//! Query governance: deadlines, cooperative cancellation, and memory
//! budgets for the long-running operator loops.
//!
//! The paper positions SGB as a first-class operator inside a DBMS, and a
//! DBMS operator must run under statement timeouts, be cancellable from
//! another thread, and degrade gracefully under resource pressure. This
//! module is the engine-side half of that contract:
//!
//! * [`SgbError`] — the typed failure taxonomy. Governed execution never
//!   returns a partial [`Grouping`](crate::query::Grouping): an aborted
//!   query yields exactly one of these errors and nothing else observable
//!   (nothing enters any cache, no maintained state is half-published).
//! * [`CancelToken`] — a cheaply clonable flag a controller thread flips
//!   to stop a running query at its next governance check.
//! * [`QueryGovernor`] — deadline + cancel token + approximate memory
//!   budget, checked periodically inside the hot loops (grid ε-join, DSU
//!   merge, nearest-center assignment, incremental delta application) via
//!   [`Pacer`], which amortises the clock read over
//!   [`CHECK_INTERVAL`]-sized batches of work.
//!
//! The governed entry points are
//! [`SgbQuery::try_run`](crate::SgbQuery::try_run) /
//! [`try_run_cached`](crate::SgbQuery::try_run_cached) and the
//! incremental [`MaintainedGrouping::try_insert`](crate::MaintainedGrouping::try_insert) /
//! [`try_delete`](crate::MaintainedGrouping::try_delete). The infallible
//! twins (`run`, `run_cached`, …) stay exactly as before — they execute
//! under [`QueryGovernor::unrestricted`], whose checks constant-fold to
//! `Ok(())`, so ungoverned hot loops pay nothing.
//!
//! ```
//! use std::time::Duration;
//! use sgb_core::{QueryGovernor, SgbError, SgbQuery};
//! use sgb_geom::Point;
//!
//! let points: Vec<Point<2>> = (0..100).map(|i| Point::new([i as f64, 0.0])).collect();
//! // Unrestricted: behaves exactly like `run`.
//! let gov = QueryGovernor::unrestricted();
//! let out = SgbQuery::any(1.5).try_run(&points, &gov).unwrap();
//! assert_eq!(out.num_groups(), 1);
//! // Pre-cancelled: the query never starts.
//! let token = sgb_core::CancelToken::new();
//! token.cancel();
//! let gov = QueryGovernor::unrestricted().with_cancel_token(token);
//! assert_eq!(SgbQuery::any(1.5).try_run(&points, &gov), Err(SgbError::Cancelled));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the governed execution paths fail. The taxonomy replaces the
/// user-reachable panics of the infallible entry points: everything a
/// caller can trigger with data or governance (as opposed to a misuse of
/// the builder API, which still panics at construction) comes back as one
/// of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SgbError {
    /// The governor's deadline passed before the query completed.
    Timeout,
    /// The query's [`CancelToken`] was cancelled.
    Cancelled,
    /// The memory budget rules out the only execution path that could
    /// run (an explicitly requested index exceeds the budget, so there
    /// is no cheaper path to fall back to).
    BudgetExceeded {
        /// Approximate bytes the rejected structure would need.
        needed: usize,
        /// The configured budget in bytes.
        budget: usize,
    },
    /// A worker thread panicked mid-query; the panic payload's message.
    /// The remaining shards were cancelled and the pool is reusable.
    WorkerPanicked {
        /// The panic message (conventional `&str`/`String` payloads).
        message: String,
    },
    /// An input point (or AROUND center) has a non-finite coordinate.
    NonFinite,
}

impl std::fmt::Display for SgbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgbError::Timeout => write!(f, "query deadline exceeded"),
            SgbError::Cancelled => write!(f, "query cancelled"),
            SgbError::BudgetExceeded { needed, budget } => write!(
                f,
                "memory budget exceeded: index needs ~{needed} bytes, budget is {budget}"
            ),
            SgbError::WorkerPanicked { message } => {
                write!(f, "worker thread panicked: {message}")
            }
            SgbError::NonFinite => {
                write!(f, "points must have finite coordinates")
            }
        }
    }
}

impl std::error::Error for SgbError {}

/// A cooperative cancellation flag. Clone it (cheap — one `Arc`) into a
/// controller thread and call [`cancel`](Self::cancel); every governed
/// query holding the token observes the flag at its next governance check
/// and returns [`SgbError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Resource governance for one query execution: an optional deadline, an
/// optional [`CancelToken`], and an optional approximate memory budget.
///
/// Shared by reference into every shard of a parallel run (`&QueryGovernor`
/// is `Sync`), so one deadline governs all workers. Construction is
/// builder-style from [`unrestricted`](Self::unrestricted); an
/// unrestricted governor's [`check`](Self::check) is a pair of `None`
/// tests, which the optimiser folds out of ungoverned hot loops.
#[derive(Clone, Debug, Default)]
pub struct QueryGovernor {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    memory_budget: Option<usize>,
}

impl QueryGovernor {
    /// A governor with no deadline, no cancel token, and no memory budget:
    /// `check` always succeeds. This is what the infallible entry points
    /// execute under.
    #[must_use]
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Sets the deadline to `timeout` from now.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets the deadline to an absolute instant (for callers amortising
    /// one deadline over several engine calls, e.g. a SQL statement).
    #[must_use]
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the approximate memory budget in bytes. The budget governs
    /// *index construction* (the dominant allocation): `Auto` resolution
    /// falls back to a streaming path when the ε-grid estimate exceeds the
    /// budget, and an explicitly requested over-budget index fails with
    /// [`SgbError::BudgetExceeded`].
    #[must_use]
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// The configured memory budget, if any.
    #[must_use]
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// `true` when no deadline, token, or budget is configured — governed
    /// code may skip per-iteration pacing entirely.
    #[must_use]
    pub fn is_unrestricted(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.memory_budget.is_none()
    }

    /// One governance check: cancellation first (cheaper and more
    /// deliberate than a clock read), then the deadline.
    ///
    /// # Errors
    /// [`SgbError::Cancelled`] / [`SgbError::Timeout`].
    #[inline]
    pub fn check(&self) -> Result<(), SgbError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(SgbError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SgbError::Timeout);
            }
        }
        Ok(())
    }

    /// Admission check for building a structure of approximately `bytes`:
    /// fails with [`SgbError::BudgetExceeded`] when a budget is set and
    /// the estimate exceeds it.
    ///
    /// # Errors
    /// [`SgbError::BudgetExceeded`].
    pub fn admit(&self, bytes: usize) -> Result<(), SgbError> {
        match self.memory_budget {
            Some(budget) if bytes > budget => Err(SgbError::BudgetExceeded {
                needed: bytes,
                budget,
            }),
            _ => Ok(()),
        }
    }

    /// Whether a structure of approximately `bytes` fits the budget
    /// (always `true` without one) — the `Auto` fallback predicate.
    #[must_use]
    pub fn fits_budget(&self, bytes: usize) -> bool {
        self.memory_budget.map_or(true, |budget| bytes <= budget)
    }
}

/// Work units between two governance checks. A clock read costs tens of
/// nanoseconds; amortised over 1024 pair verifications or point
/// assignments it disappears into the noise (the CI bench gate pins the
/// ungoverned overhead below 2%), while still bounding the reaction time
/// to a deadline or cancellation by about a thousand loop iterations.
pub const CHECK_INTERVAL: u32 = 1024;

/// An amortising ticker for governance checks inside hot loops: call
/// [`tick`](Self::tick) once per work unit; only every
/// [`CHECK_INTERVAL`]-th call performs the actual [`QueryGovernor::check`].
/// One `Pacer` per thread — shards each own one while sharing the governor.
#[derive(Debug, Default)]
pub struct Pacer {
    count: u32,
}

impl Pacer {
    /// A fresh pacer whose first check happens after [`CHECK_INTERVAL`]
    /// ticks (callers check once before entering the loop).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one unit of work, checking the governor every
    /// [`CHECK_INTERVAL`] calls.
    ///
    /// # Errors
    /// Whatever [`QueryGovernor::check`] reports.
    #[inline]
    pub fn tick(&mut self, governor: &QueryGovernor) -> Result<(), SgbError> {
        self.count = self.count.wrapping_add(1);
        if self.count % CHECK_INTERVAL == 0 {
            governor.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_always_passes() {
        let gov = QueryGovernor::unrestricted();
        assert!(gov.is_unrestricted());
        assert_eq!(gov.check(), Ok(()));
        assert_eq!(gov.admit(usize::MAX), Ok(()));
        assert!(gov.fits_budget(usize::MAX));
    }

    #[test]
    fn expired_deadline_times_out() {
        let gov = QueryGovernor::unrestricted().with_deadline(Duration::ZERO);
        assert!(!gov.is_unrestricted());
        assert_eq!(gov.check(), Err(SgbError::Timeout));
        // A generous deadline passes.
        let gov = QueryGovernor::unrestricted().with_deadline(Duration::from_secs(3600));
        assert_eq!(gov.check(), Ok(()));
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let token = CancelToken::new();
        let gov = QueryGovernor::unrestricted()
            .with_deadline(Duration::ZERO)
            .with_cancel_token(token.clone());
        assert_eq!(gov.check(), Err(SgbError::Timeout), "not yet cancelled");
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(gov.check(), Err(SgbError::Cancelled));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn budget_admission() {
        let gov = QueryGovernor::unrestricted().with_memory_budget(1000);
        assert_eq!(gov.memory_budget(), Some(1000));
        assert_eq!(gov.admit(1000), Ok(()));
        assert!(gov.fits_budget(1000));
        assert!(!gov.fits_budget(1001));
        assert_eq!(
            gov.admit(1001),
            Err(SgbError::BudgetExceeded {
                needed: 1001,
                budget: 1000
            })
        );
    }

    #[test]
    fn pacer_checks_only_at_the_interval() {
        // A pre-cancelled governor: the pacer must pass until the
        // interval-th tick, then fail.
        let token = CancelToken::new();
        token.cancel();
        let gov = QueryGovernor::unrestricted().with_cancel_token(token);
        let mut pacer = Pacer::new();
        for _ in 0..CHECK_INTERVAL - 1 {
            assert_eq!(pacer.tick(&gov), Ok(()));
        }
        assert_eq!(pacer.tick(&gov), Err(SgbError::Cancelled));
    }

    #[test]
    fn errors_display_their_cause() {
        assert_eq!(SgbError::Timeout.to_string(), "query deadline exceeded");
        assert_eq!(SgbError::Cancelled.to_string(), "query cancelled");
        assert!(SgbError::BudgetExceeded {
            needed: 10,
            budget: 5
        }
        .to_string()
        .contains("~10 bytes"));
        assert!(SgbError::WorkerPanicked {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert_eq!(
            SgbError::NonFinite.to_string(),
            "points must have finite coordinates"
        );
    }
}
