//! Cost-based algorithm selection for the `Auto` variants.
//!
//! Every operator family offers several physically different but
//! semantically identical execution paths; which one wins depends on the
//! workload shape. The `Auto` variant of
//! [`AllAlgorithm`]/[`AnyAlgorithm`]/[`AroundAlgorithm`] delegates the
//! choice to this module, which applies a small cost model over the
//! quantities that actually move the needle — input cardinality, center
//! count, and dimensionality — with thresholds calibrated against the
//! committed benchmark reports at the repository root:
//!
//! * `BENCH_around.json` — the center-R-tree path *loses* to the brute
//!   center scan below roughly 1k centers because index construction
//!   dominates; the brute path stays within ~2× even at 1024 centers.
//!   Hence [`AROUND_BRUTE_MAX_CENTERS`].
//! * `BENCH_metrics.json` / `BENCH_grid.json` — at n = 10k the ε-grid
//!   SGB-Any path beats the on-the-fly R-tree by well over 2×, while below
//!   a few hundred points no index of any kind amortises its construction.
//!   Hence [`ANY_ALL_PAIRS_MAX_N`] / [`ALL_ALL_PAIRS_MAX_N`].
//! * The grid probe examines `5^D` cells per point (the 3^D neighbourhood
//!   plus a one-cell rounding pad), so past [`GRID_MAX_DIMS`] dimensions
//!   the R-tree's adaptive partitioning wins. The shipped operators are
//!   instantiated at 2-D/3-D, where the grid always qualifies.
//!
//! Every resolver returns the chosen *concrete* algorithm together with a
//! human-readable reason; the SQL layer surfaces both through `EXPLAIN`.
//! Resolution never affects results: all concrete paths are proven
//! bit-identical (see the `proptest_grid` suite), so `Auto` only ever
//! changes *when* the answer arrives.

use crate::governor::{QueryGovernor, SgbError};
use crate::{AllAlgorithm, AnyAlgorithm, AroundAlgorithm};

/// Below this input cardinality SGB-All's `Auto` stays with the all-pairs
/// scan: group structures are tiny and building any accelerator costs more
/// than it saves (BENCH_grid.json, small-n rows).
pub const ALL_ALL_PAIRS_MAX_N: usize = 256;

/// Up to this input cardinality SGB-All's `Auto` uses Bounds-Checking:
/// the dense rectangle-directory scan wins every BENCH_grid.json
/// configuration up to n = 10k, and its `O(n · |G|)` growth crosses the
/// R-tree's `O(n log |G|)` right around n = 20k (0.0249s vs 0.0246s).
/// SGB-All's member-grid stays an explicit option but is never
/// auto-chosen: its probes pay per-*member* verification where the
/// rectangle paths pay per-*group* tests, which loses whenever groups
/// grow past a handful of members (BENCH_grid.json, eps >= 0.3 rows).
pub const ALL_BOUNDS_MAX_N: usize = 16_384;

/// Below this input cardinality SGB-Any's `Auto` stays with the all-pairs
/// scan (BENCH_grid.json, small-n rows).
pub const ANY_ALL_PAIRS_MAX_N: usize = 512;

/// Up to this many centers SGB-Around's `Auto` uses the brute center scan:
/// BENCH_around.json shows the R-tree path losing below ~1k centers
/// because index construction dominates the per-tuple savings, and the
/// BENCH_grid.json center sweep brackets the grid's crossover between 64
/// (brute 0.0007s vs grid 0.0038s) and 256 centers (0.0108s vs 0.0080s).
pub const AROUND_BRUTE_MAX_CENTERS: usize = 128;

/// Highest dimensionality at which the ε-grid is selected; beyond it the
/// per-probe cell neighbourhood (`5^D`) outgrows an R-tree descent.
pub const GRID_MAX_DIMS: usize = 3;

/// Below this input cardinality the parallel engine stays sequential even
/// when threads were left on auto: spawning workers and merging per-shard
/// results costs tens of microseconds, which a small input cannot win
/// back.
pub const PARALLEL_MIN_N: usize = 8192;

/// Marker reason for explicitly configured (non-`Auto`) algorithms.
fn configured() -> String {
    "configured explicitly".to_owned()
}

/// Resolves the SGB-All algorithm for a known input cardinality `n` in
/// `dims` dimensions. Non-`Auto` inputs pass through unchanged.
pub fn resolve_all(
    configured_algo: AllAlgorithm,
    n: usize,
    _dims: usize,
) -> (AllAlgorithm, String) {
    match configured_algo {
        AllAlgorithm::Auto => {
            if n <= ALL_ALL_PAIRS_MAX_N {
                (
                    AllAlgorithm::AllPairs,
                    format!(
                        "auto: n = {n} <= {ALL_ALL_PAIRS_MAX_N}, plain scan beats index construction"
                    ),
                )
            } else if n <= ALL_BOUNDS_MAX_N {
                (
                    AllAlgorithm::BoundsChecking,
                    format!(
                        "auto: n = {n} <= {ALL_BOUNDS_MAX_N}, dense rectangle directory wins \
                         (BENCH_grid.json)"
                    ),
                )
            } else {
                (
                    AllAlgorithm::Indexed,
                    format!(
                        "auto: n = {n} > {ALL_BOUNDS_MAX_N}, group R-tree overtakes the linear \
                         rectangle scan (BENCH_grid.json crossover ~20k)"
                    ),
                )
            }
        }
        other => (other, configured()),
    }
}

/// Resolves the SGB-All algorithm for a streaming operator, where the
/// final cardinality is unknown at construction time: `Auto` assumes the
/// scalable regime (streams are open-ended) and picks the group R-tree.
/// One-shot entry points — including the SQL executor — know `n` and use
/// [`resolve_all`] instead.
pub fn resolve_all_streaming(configured_algo: AllAlgorithm, dims: usize) -> AllAlgorithm {
    resolve_all_streaming_with_reason(configured_algo, dims).0
}

/// [`resolve_all_streaming`] plus the human-readable reason, for surfaces
/// that report the selection (the unified `SgbStream`).
pub fn resolve_all_streaming_with_reason(
    configured_algo: AllAlgorithm,
    _dims: usize,
) -> (AllAlgorithm, String) {
    match configured_algo {
        AllAlgorithm::Auto => (
            AllAlgorithm::Indexed,
            "auto: streaming input of unknown cardinality, scalable regime (group R-tree)"
                .to_owned(),
        ),
        other => (other, configured()),
    }
}

/// Resolves the SGB-Any algorithm for a known input cardinality `n` in
/// `dims` dimensions. Non-`Auto` inputs pass through unchanged.
pub fn resolve_any(configured_algo: AnyAlgorithm, n: usize, dims: usize) -> (AnyAlgorithm, String) {
    match configured_algo {
        AnyAlgorithm::Auto => {
            if n <= ANY_ALL_PAIRS_MAX_N {
                (
                    AnyAlgorithm::AllPairs,
                    format!(
                        "auto: n = {n} <= {ANY_ALL_PAIRS_MAX_N}, plain scan beats index construction"
                    ),
                )
            } else if dims > GRID_MAX_DIMS {
                (
                    AnyAlgorithm::Indexed,
                    format!("auto: {dims}-D exceeds the grid sweet spot (<= {GRID_MAX_DIMS}-D)"),
                )
            } else {
                (
                    AnyAlgorithm::Grid,
                    format!("auto: n = {n} > {ANY_ALL_PAIRS_MAX_N}, eps-grid neighbor scan wins (BENCH_grid.json)"),
                )
            }
        }
        other => (other, configured()),
    }
}

/// [`resolve_any`] for a session that may already hold a usable cached
/// ε-grid for the input's table version. A cached grid has zero build
/// cost, which flips the small-n trade-off: the plain scan only won
/// because index *construction* dominated, so when construction is free
/// the grid path wins at every cardinality (within its dimensionality
/// sweet spot). Non-`Auto` inputs still pass through unchanged.
pub fn resolve_any_with_cache(
    configured_algo: AnyAlgorithm,
    n: usize,
    dims: usize,
    cached_grid: bool,
) -> (AnyAlgorithm, String) {
    if configured_algo == AnyAlgorithm::Auto && cached_grid && dims <= GRID_MAX_DIMS {
        return (
            AnyAlgorithm::Grid,
            format!("auto: cached eps-grid for this table version, zero build cost (n = {n})"),
        );
    }
    resolve_any(configured_algo, n, dims)
}

/// Rough upper bound on the resident bytes of an ε-grid over `n` points
/// in `dims` dimensions: each entry stores the point's coordinates plus a
/// payload id, doubled for hash-map slack and per-cell vector headroom,
/// plus a fixed base for the map itself. Deliberately pessimistic — the
/// governor's memory budget is an admission control, not an allocator.
pub fn estimated_grid_bytes(n: usize, dims: usize) -> usize {
    n.saturating_mul(dims * 8 + 8)
        .saturating_mul(2)
        .saturating_add(1024)
}

/// Rough upper bound on the resident bytes of a bulk-loaded point R-tree
/// over `n` points in `dims` dimensions: each leaf entry stores an MBR
/// (two corners) plus a payload id, internal nodes add roughly one entry
/// per fan-out'd child, doubled for arena slack. Like
/// [`estimated_grid_bytes`], deliberately pessimistic — admission control,
/// not an allocator.
pub fn estimated_rtree_bytes(n: usize, dims: usize) -> usize {
    n.saturating_mul(dims * 16 + 16)
        .saturating_mul(2)
        .saturating_add(1024)
}

/// Rough upper bound on the resident bytes of an SGB-Around center index
/// over `centers` centers in `dims` dimensions. The R-tree bound is the
/// pessimistic superset of both concrete center indexes (the grid stores
/// one corner per entry where the tree stores two), so one bound prices
/// either structure.
pub fn estimated_center_index_bytes(centers: usize, dims: usize) -> usize {
    estimated_rtree_bytes(centers, dims)
}

/// [`resolve_any_with_cache`] under a [`QueryGovernor`] memory budget,
/// pricing only the ε-grid. Kept for callers without an R-tree cache
/// probe; equivalent to [`resolve_any_governed_full`] with
/// `cached_tree = false`.
pub fn resolve_any_governed(
    configured_algo: AnyAlgorithm,
    n: usize,
    dims: usize,
    cached_grid: bool,
    governor: &QueryGovernor,
) -> Result<(AnyAlgorithm, String), SgbError> {
    resolve_any_governed_full(configured_algo, n, dims, cached_grid, false, governor)
}

/// [`resolve_any_with_cache`] under a [`QueryGovernor`] memory budget.
///
/// The budget governs the structures whose footprint scales with the
/// *table*: the ε-grid ([`estimated_grid_bytes`]) and the bulk-loaded
/// point R-tree ([`estimated_rtree_bytes`]). When the estimated build
/// would not fit:
///
/// * `Auto` **degrades gracefully** to the streaming all-pairs scan —
///   O(1) extra memory, bit-identical output — and the returned reason
///   records the fallback for `EXPLAIN`;
/// * an **explicitly configured** `Grid` or `Indexed` fails with
///   [`SgbError::BudgetExceeded`] instead of silently running something
///   else.
///
/// A usable *cached* structure (`cached_grid` / `cached_tree`) is admitted
/// regardless of the budget: it already exists, so running against it
/// allocates nothing new.
pub fn resolve_any_governed_full(
    configured_algo: AnyAlgorithm,
    n: usize,
    dims: usize,
    cached_grid: bool,
    cached_tree: bool,
    governor: &QueryGovernor,
) -> Result<(AnyAlgorithm, String), SgbError> {
    let (resolved, reason) = resolve_any_with_cache(configured_algo, n, dims, cached_grid);
    let (needed, cached, structure) = match resolved {
        AnyAlgorithm::Grid => (estimated_grid_bytes(n, dims), cached_grid, "eps-grid"),
        AnyAlgorithm::Indexed => (estimated_rtree_bytes(n, dims), cached_tree, "point R-tree"),
        _ => return Ok((resolved, reason)),
    };
    if cached || governor.fits_budget(needed) {
        return Ok((resolved, reason));
    }
    let budget = governor
        .memory_budget()
        .expect("a budget exists whenever fits_budget is false");
    if configured_algo == AnyAlgorithm::Auto {
        Ok((
            AnyAlgorithm::AllPairs,
            format!(
                "auto: {structure} needs ~{needed} B, over the {budget} B memory budget; \
                 degraded to the streaming all-pairs scan"
            ),
        ))
    } else {
        Err(SgbError::BudgetExceeded { needed, budget })
    }
}

/// [`resolve_around_with_cache`] under a [`QueryGovernor`] memory budget:
/// the SGB-Around center-index builds (R-tree or center grid, priced by
/// [`estimated_center_index_bytes`]) are admitted only when they fit.
/// A cached index matching the resolved algorithm is admitted regardless —
/// it already exists. On a miss, `Auto` degrades to the O(1)-memory brute
/// center scan (bit-identical output; the reason records the fallback),
/// while an explicitly configured index path fails with
/// [`SgbError::BudgetExceeded`].
pub fn resolve_around_governed(
    configured_algo: AroundAlgorithm,
    centers: usize,
    dims: usize,
    cached: Option<AroundAlgorithm>,
    governor: &QueryGovernor,
) -> Result<(AroundAlgorithm, String), SgbError> {
    let (resolved, reason) = resolve_around_with_cache(configured_algo, centers, dims, cached);
    if !matches!(resolved, AroundAlgorithm::Indexed | AroundAlgorithm::Grid)
        || cached == Some(resolved)
    {
        return Ok((resolved, reason));
    }
    let needed = estimated_center_index_bytes(centers, dims);
    if governor.fits_budget(needed) {
        return Ok((resolved, reason));
    }
    let budget = governor
        .memory_budget()
        .expect("a budget exists whenever fits_budget is false");
    if configured_algo == AroundAlgorithm::Auto {
        Ok((
            AroundAlgorithm::BruteForce,
            format!(
                "auto: center index needs ~{needed} B, over the {budget} B memory budget; \
                 degraded to the brute center scan"
            ),
        ))
    } else {
        Err(SgbError::BudgetExceeded { needed, budget })
    }
}

/// Streaming counterpart of [`resolve_any`] — see
/// [`resolve_all_streaming`] for the rationale.
pub fn resolve_any_streaming(configured_algo: AnyAlgorithm, dims: usize) -> AnyAlgorithm {
    resolve_any_streaming_with_reason(configured_algo, dims).0
}

/// [`resolve_any_streaming`] plus the human-readable reason, for surfaces
/// that report the selection (the unified `SgbStream`).
pub fn resolve_any_streaming_with_reason(
    configured_algo: AnyAlgorithm,
    dims: usize,
) -> (AnyAlgorithm, String) {
    match configured_algo {
        AnyAlgorithm::Auto if dims > GRID_MAX_DIMS => (
            AnyAlgorithm::Indexed,
            format!("auto: streaming input, {dims}-D exceeds the grid sweet spot (<= {GRID_MAX_DIMS}-D)"),
        ),
        AnyAlgorithm::Auto => (
            AnyAlgorithm::Grid,
            "auto: streaming input of unknown cardinality, scalable regime (eps-grid)".to_owned(),
        ),
        other => (other, configured()),
    }
}

/// Resolves the SGB-Around algorithm from the center count (the quantity
/// the per-tuple cost actually depends on — centers are known up front, so
/// streaming and one-shot paths resolve identically) in `dims` dimensions.
pub fn resolve_around(
    configured_algo: AroundAlgorithm,
    centers: usize,
    dims: usize,
) -> (AroundAlgorithm, String) {
    match configured_algo {
        AroundAlgorithm::Auto => {
            if centers <= AROUND_BRUTE_MAX_CENTERS {
                (
                    AroundAlgorithm::BruteForce,
                    format!(
                        "auto: {centers} centers <= {AROUND_BRUTE_MAX_CENTERS}, center scan beats \
                         index construction (BENCH_around.json crossover ~1k)"
                    ),
                )
            } else if dims > GRID_MAX_DIMS {
                (
                    AroundAlgorithm::Indexed,
                    format!("auto: {dims}-D exceeds the grid sweet spot (<= {GRID_MAX_DIMS}-D)"),
                )
            } else {
                (
                    AroundAlgorithm::Grid,
                    format!(
                        "auto: {centers} centers > {AROUND_BRUTE_MAX_CENTERS}, center grid \
                         expected-O(1) probe wins (BENCH_grid.json)"
                    ),
                )
            }
        }
        other => (other, configured()),
    }
}

/// [`resolve_around`] for a session that may already hold a cached center
/// index for this exact center set. Center indexes are built from the
/// query's centers (not the table), so a hit means zero build cost and
/// `Auto` reuses the cached structure even below the brute-force
/// crossover. `cached` names the concrete algorithm of the cached index,
/// when one exists. Non-`Auto` inputs still pass through unchanged.
pub fn resolve_around_with_cache(
    configured_algo: AroundAlgorithm,
    centers: usize,
    dims: usize,
    cached: Option<AroundAlgorithm>,
) -> (AroundAlgorithm, String) {
    if configured_algo == AroundAlgorithm::Auto && dims <= GRID_MAX_DIMS {
        if let Some(algo @ (AroundAlgorithm::Grid | AroundAlgorithm::Indexed)) = cached {
            return (
                algo,
                format!("auto: cached center index, zero build cost ({centers} centers)"),
            );
        }
    }
    resolve_around(configured_algo, centers, dims)
}

/// Resolves the worker-thread count for a parallelisable path over `n`
/// tuples. `requested == 0` means auto: stay sequential below
/// [`PARALLEL_MIN_N`], otherwise use the machine's available parallelism,
/// capped so every worker still owns at least `PARALLEL_MIN_N / 2` tuples
/// (a shard smaller than that spends more time in spawn/merge than in the
/// join). An explicit `requested > 0` always wins — benchmarks and the
/// determinism tests pin exact counts.
///
/// Thread count never affects results: the parallel paths are proven
/// bit-identical to their sequential twins (see `proptest_parallel`), so
/// this choice, like algorithm selection, only moves *when* the answer
/// arrives.
pub fn resolve_threads(requested: usize, n: usize) -> (usize, String) {
    if requested > 0 {
        return (requested, configured());
    }
    if n < PARALLEL_MIN_N {
        return (
            1,
            format!("auto: n = {n} < {PARALLEL_MIN_N}, sequential (spawn + merge would dominate)"),
        );
    }
    let available = std::thread::available_parallelism().map_or(1, |p| p.get());
    let useful = (n / (PARALLEL_MIN_N / 2)).max(1);
    let threads = available.min(useful).max(1);
    (
        threads,
        format!("auto: n = {n}, {available} hardware threads, using {threads}"),
    )
}

/// Threads for SGB-All: always 1. The operator's semantics are
/// arrival-order sensitive (ON-OVERLAP arbitration depends on which groups
/// already exist when a point arrives), so there is no parallel twin to be
/// bit-identical to; a requested thread count is accepted and ignored.
pub fn threads_for_all() -> (usize, String) {
    (
        1,
        "sequential: SGB-All arbitration is arrival-order sensitive".to_owned(),
    )
}

/// Threads for a *resolved* (concrete) SGB-Any algorithm: only the ε-grid
/// path shards its close-pair join, so the other paths run sequentially
/// regardless of the request.
pub fn threads_for_any(algorithm: AnyAlgorithm, requested: usize, n: usize) -> (usize, String) {
    match algorithm {
        AnyAlgorithm::Grid => resolve_threads(requested, n),
        _ => (
            1,
            "sequential: only the grid eps-join shards across threads".to_owned(),
        ),
    }
}

/// Threads for SGB-Around over `n` tuples: the nearest-center assignment
/// is independent per tuple, so every concrete algorithm parallelises.
pub fn threads_for_around(requested: usize, n: usize) -> (usize, String) {
    resolve_threads(requested, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_auto_passes_through() {
        for algo in [
            AllAlgorithm::AllPairs,
            AllAlgorithm::BoundsChecking,
            AllAlgorithm::Indexed,
            AllAlgorithm::Grid,
        ] {
            let (resolved, reason) = resolve_all(algo, 1_000_000, 2);
            assert_eq!(resolved, algo);
            assert!(reason.contains("configured"), "{reason}");
        }
        assert_eq!(
            resolve_any(AnyAlgorithm::AllPairs, 1_000_000, 2).0,
            AnyAlgorithm::AllPairs
        );
        assert_eq!(
            resolve_around(AroundAlgorithm::Indexed, 5000, 2).0,
            AroundAlgorithm::Indexed
        );
    }

    #[test]
    fn auto_picks_scan_for_small_inputs() {
        assert_eq!(
            resolve_all(AllAlgorithm::Auto, ALL_ALL_PAIRS_MAX_N, 2).0,
            AllAlgorithm::AllPairs
        );
        assert_eq!(
            resolve_any(AnyAlgorithm::Auto, ANY_ALL_PAIRS_MAX_N, 2).0,
            AnyAlgorithm::AllPairs
        );
        assert_eq!(
            resolve_around(AroundAlgorithm::Auto, AROUND_BRUTE_MAX_CENTERS, 2).0,
            AroundAlgorithm::BruteForce
        );
    }

    #[test]
    fn auto_tracks_the_benchmarked_winner_per_regime() {
        for dims in [2, 3] {
            // SGB-All: bounds-checking in the mid range, R-tree past the
            // measured ~20k crossover; the member grid is never
            // auto-chosen (it pays per-member verification).
            assert_eq!(
                resolve_all(AllAlgorithm::Auto, 10_000, dims).0,
                AllAlgorithm::BoundsChecking
            );
            assert_eq!(
                resolve_all(AllAlgorithm::Auto, 20_000, dims).0,
                AllAlgorithm::Indexed
            );
            assert_eq!(
                resolve_any(AnyAlgorithm::Auto, 10_000, dims).0,
                AnyAlgorithm::Grid
            );
            assert_eq!(
                resolve_around(AroundAlgorithm::Auto, 4096, dims).0,
                AroundAlgorithm::Grid
            );
        }
    }

    #[test]
    fn auto_prefers_rtree_in_high_dims() {
        assert_eq!(
            resolve_any(AnyAlgorithm::Auto, 10_000, 5).0,
            AnyAlgorithm::Indexed
        );
        assert_eq!(
            resolve_around(AroundAlgorithm::Auto, 4096, 4).0,
            AroundAlgorithm::Indexed
        );
        assert_eq!(
            resolve_any_streaming(AnyAlgorithm::Auto, 4),
            AnyAlgorithm::Indexed
        );
    }

    #[test]
    fn streaming_resolution_never_returns_auto() {
        assert_eq!(
            resolve_all_streaming(AllAlgorithm::Auto, 2),
            AllAlgorithm::Indexed
        );
        assert_eq!(
            resolve_any_streaming(AnyAlgorithm::Auto, 2),
            AnyAlgorithm::Grid
        );
        assert_eq!(
            resolve_all_streaming(AllAlgorithm::BoundsChecking, 2),
            AllAlgorithm::BoundsChecking
        );
    }

    #[test]
    fn explicit_thread_requests_always_win() {
        for n in [1, PARALLEL_MIN_N, 1_000_000] {
            let (t, reason) = resolve_threads(7, n);
            assert_eq!(t, 7);
            assert!(reason.contains("configured"), "{reason}");
        }
    }

    #[test]
    fn auto_threads_stay_sequential_below_the_threshold() {
        for n in [0, 1, PARALLEL_MIN_N - 1] {
            let (t, reason) = resolve_threads(0, n);
            assert_eq!(t, 1);
            assert!(reason.contains("sequential"), "{reason}");
        }
    }

    #[test]
    fn auto_threads_are_bounded_by_useful_work() {
        // A shard must own at least PARALLEL_MIN_N / 2 tuples.
        let (t, _) = resolve_threads(0, PARALLEL_MIN_N);
        assert!(t <= PARALLEL_MIN_N / (PARALLEL_MIN_N / 2));
        let (t, _) = resolve_threads(0, 1_000_000);
        let available = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert!(t >= 1 && t <= available);
    }

    #[test]
    fn operator_thread_policies() {
        // SGB-All never parallelises, even when asked.
        assert_eq!(threads_for_all().0, 1);
        // SGB-Any: only the grid path shards.
        assert_eq!(threads_for_any(AnyAlgorithm::Grid, 3, 100_000).0, 3);
        assert_eq!(threads_for_any(AnyAlgorithm::AllPairs, 3, 100_000).0, 1);
        assert_eq!(threads_for_any(AnyAlgorithm::Indexed, 3, 100_000).0, 1);
        // SGB-Around parallelises on every concrete path.
        assert_eq!(threads_for_around(5, 10).0, 5);
        assert_eq!(threads_for_around(0, 10).0, 1);
    }

    #[test]
    fn cache_aware_resolution_prefers_the_free_index() {
        // A cached grid flips Auto onto the grid path even below the
        // build-amortisation threshold…
        let (algo, reason) = resolve_any_with_cache(AnyAlgorithm::Auto, 10, 2, true);
        assert_eq!(algo, AnyAlgorithm::Grid);
        assert!(reason.contains("zero build cost"), "{reason}");
        // …but never outside the grid's dimensionality sweet spot, never
        // without a cached index, and never over an explicit choice.
        assert_eq!(
            resolve_any_with_cache(AnyAlgorithm::Auto, 10_000, 5, true).0,
            AnyAlgorithm::Indexed
        );
        assert_eq!(
            resolve_any_with_cache(AnyAlgorithm::Auto, 10, 2, false),
            resolve_any(AnyAlgorithm::Auto, 10, 2)
        );
        assert_eq!(
            resolve_any_with_cache(AnyAlgorithm::AllPairs, 10_000, 2, true).0,
            AnyAlgorithm::AllPairs
        );

        let (algo, reason) =
            resolve_around_with_cache(AroundAlgorithm::Auto, 3, 2, Some(AroundAlgorithm::Grid));
        assert_eq!(algo, AroundAlgorithm::Grid);
        assert!(reason.contains("zero build cost"), "{reason}");
        assert_eq!(
            resolve_around_with_cache(AroundAlgorithm::Auto, 3, 2, None),
            resolve_around(AroundAlgorithm::Auto, 3, 2)
        );
        // A cached brute "index" is no index at all: fall through.
        assert_eq!(
            resolve_around_with_cache(
                AroundAlgorithm::Auto,
                3,
                2,
                Some(AroundAlgorithm::BruteForce)
            ),
            resolve_around(AroundAlgorithm::Auto, 3, 2)
        );
    }

    #[test]
    fn governed_resolution_enforces_the_memory_budget() {
        let unrestricted = QueryGovernor::unrestricted();
        // No budget: identical to the cache-aware resolver.
        assert_eq!(
            resolve_any_governed(AnyAlgorithm::Auto, 10_000, 2, false, &unrestricted).unwrap(),
            resolve_any_with_cache(AnyAlgorithm::Auto, 10_000, 2, false)
        );
        // A budget too small for the grid degrades Auto to all-pairs…
        let tight = QueryGovernor::unrestricted().with_memory_budget(64);
        let (algo, reason) =
            resolve_any_governed(AnyAlgorithm::Auto, 10_000, 2, false, &tight).unwrap();
        assert_eq!(algo, AnyAlgorithm::AllPairs);
        assert!(reason.contains("memory budget"), "{reason}");
        // …but an explicit Grid request fails loudly instead.
        let err = resolve_any_governed(AnyAlgorithm::Grid, 10_000, 2, false, &tight).unwrap_err();
        assert!(matches!(err, SgbError::BudgetExceeded { .. }), "{err:?}");
        // A cached grid allocates nothing new, so the budget never blocks it.
        let (algo, _) = resolve_any_governed(AnyAlgorithm::Auto, 10_000, 2, true, &tight).unwrap();
        assert_eq!(algo, AnyAlgorithm::Grid);
        // The estimate grows with n and never panics at the extremes.
        assert!(estimated_grid_bytes(10, 2) < estimated_grid_bytes(10_000, 2));
        let _ = estimated_grid_bytes(usize::MAX, 3);
    }

    #[test]
    fn governed_resolution_prices_the_rtree_build() {
        let tight = QueryGovernor::unrestricted().with_memory_budget(64);
        // Auto in high dimensions resolves to the R-tree, which no longer
        // fits: degrade to the all-pairs scan with the fallback recorded.
        let (algo, reason) =
            resolve_any_governed_full(AnyAlgorithm::Auto, 10_000, 5, false, false, &tight).unwrap();
        assert_eq!(algo, AnyAlgorithm::AllPairs);
        assert!(reason.contains("memory budget"), "{reason}");
        assert!(reason.contains("R-tree"), "{reason}");
        // An explicit Indexed request fails loudly instead.
        let err = resolve_any_governed_full(AnyAlgorithm::Indexed, 10_000, 2, false, false, &tight)
            .unwrap_err();
        assert!(matches!(err, SgbError::BudgetExceeded { .. }), "{err:?}");
        // A cached tree allocates nothing new, so it is always admitted.
        let (algo, _) =
            resolve_any_governed_full(AnyAlgorithm::Indexed, 10_000, 2, false, true, &tight)
                .unwrap();
        assert_eq!(algo, AnyAlgorithm::Indexed);
        // The estimate grows with n and never panics at the extremes.
        assert!(estimated_rtree_bytes(10, 2) < estimated_rtree_bytes(10_000, 2));
        let _ = estimated_rtree_bytes(usize::MAX, 3);
    }

    #[test]
    fn governed_resolution_prices_the_center_index_build() {
        let unrestricted = QueryGovernor::unrestricted();
        // No budget: identical to the cache-aware resolver.
        assert_eq!(
            resolve_around_governed(AroundAlgorithm::Auto, 4096, 2, None, &unrestricted).unwrap(),
            resolve_around_with_cache(AroundAlgorithm::Auto, 4096, 2, None)
        );
        let tight = QueryGovernor::unrestricted().with_memory_budget(64);
        // Auto above the brute crossover degrades back to the brute scan…
        let (algo, reason) =
            resolve_around_governed(AroundAlgorithm::Auto, 4096, 2, None, &tight).unwrap();
        assert_eq!(algo, AroundAlgorithm::BruteForce);
        assert!(reason.contains("memory budget"), "{reason}");
        // …while explicit index requests fail loudly.
        for explicit in [AroundAlgorithm::Indexed, AroundAlgorithm::Grid] {
            let err = resolve_around_governed(explicit, 4096, 2, None, &tight).unwrap_err();
            assert!(matches!(err, SgbError::BudgetExceeded { .. }), "{err:?}");
        }
        // A cached index of the resolved shape is admitted under any budget.
        let (algo, _) = resolve_around_governed(
            AroundAlgorithm::Grid,
            4096,
            2,
            Some(AroundAlgorithm::Grid),
            &tight,
        )
        .unwrap();
        assert_eq!(algo, AroundAlgorithm::Grid);
        // The brute scan needs no structure, so it always passes.
        let (algo, _) =
            resolve_around_governed(AroundAlgorithm::BruteForce, 4096, 2, None, &tight).unwrap();
        assert_eq!(algo, AroundAlgorithm::BruteForce);
    }

    #[test]
    fn reasons_name_the_deciding_quantity() {
        let (_, r) = resolve_any(AnyAlgorithm::Auto, 10, 2);
        assert!(r.contains("n = 10"), "{r}");
        let (_, r) = resolve_around(AroundAlgorithm::Auto, 3, 2);
        assert!(r.contains("3 centers"), "{r}");
        let (_, r) = resolve_all(AllAlgorithm::Auto, 9999, 2);
        assert!(r.contains("rectangle directory"), "{r}");
    }
}
