//! Incremental maintenance of similarity groupings under point deltas.
//!
//! The paper's motivating workloads (check-in streams, MANET nodes in
//! motion) are update-heavy, while the batch operators rebuild the world
//! per query. This module maintains a live [`Grouping`] across
//! [`insert`](MaintainedGrouping::insert) / [`delete`](MaintainedGrouping::delete)
//! deltas in sub-linear time per update, exploiting what the
//! order-independence analysis (arXiv:1412.4303) proves about each
//! operator:
//!
//! * **SGB-Any** depends only on the ε-edge set. A [`TrackedDsu`] holds the
//!   connected components together with per-component member lists and
//!   exact edge counts. Inserts union the new tuple into its neighboring
//!   components (one grid probe). Deletes remove the tuple in place when
//!   connectivity provably survives — the tuple was isolated, a leaf, or
//!   the remaining member set is a complete graph — and otherwise fall
//!   back to a *scoped* re-cluster of just that component's members (every
//!   within-ε neighbor of a member belonged to the same component, so the
//!   probes never leak across components).
//! * **SGB-Around** assignment is per-tuple independent: inserts classify
//!   exactly one tuple against the fixed center index, deletes drop one
//!   slot. Nothing else moves.
//! * **SGB-All** arbitration is arrival-order sensitive, so the engine
//!   keeps a live streaming replica ([`SgbAll`]) whose state always equals
//!   a from-scratch stream over the live points in slot order. Inserts
//!   push one point. Deletes take the fast path when the tuple is
//!   ε-isolated from every other input point — such a tuple formed a
//!   pristine singleton group that no other tuple's candidate or overlap
//!   sets ever saw (and that consumed no arbitration randomness), so the
//!   group is marked dead in place. Any other delete marks the replica
//!   dirty and the next [`snapshot`](MaintainedGrouping::snapshot) rebuilds
//!   it lazily — the honest fallback, since a clique that loses a member
//!   can cascade through the `ON-OVERLAP` arbitration of every later
//!   arrival.
//!
//! Ground truth: [`snapshot`](MaintainedGrouping::snapshot) is always equal
//! (full [`Grouping`] equality) to `query.run(&live_points)` over the live
//! points in slot order — pinned across random edit scripts for all three
//! operators × metrics by `tests/proptest_incremental.rs`.

use std::sync::Arc;

use sgb_dsu::TrackedDsu;
use sgb_geom::Point;
use sgb_spatial::Grid;

use crate::around::{
    build_center_index, is_outlier, nearest_center_in, AroundGrouping, CenterIndex,
};
use crate::governor::{QueryGovernor, SgbError};
use crate::grouping::Grouping as FlatGrouping;
use crate::query::{Grouping, OpSpec, SgbQuery};
use crate::{cost, AroundAlgorithm, RecordId, SgbAll, SgbAroundConfig};
use sgb_telemetry::{Counter, Telemetry};

/// Stable identifier of a maintained point: its insertion slot. Slots are
/// dense, append-only, and never reused, so a `SlotId` stays valid across
/// any number of unrelated deltas. The record ids of a
/// [`snapshot`](MaintainedGrouping::snapshot) are **dense ranks** over the
/// live slots (slot order), exactly the ids a from-scratch run over the
/// live points would assign.
pub type SlotId = usize;

/// Per-operator incremental state.
#[derive(Clone, Debug)]
enum OpState<const D: usize> {
    /// ε-connectivity components with member lists and edge counts.
    Any { dsu: TrackedDsu },
    /// Fixed center index plus the per-slot assignment (`Some(center)` or
    /// `None` = outlier; entries of deleted slots are stale and skipped).
    Around {
        cfg: SgbAroundConfig<D>,
        index: Arc<CenterIndex<D>>,
        assign: Vec<Option<usize>>,
        scratch: Vec<usize>,
    },
    /// Streaming replica of a from-scratch run over the live slots in slot
    /// order. `pushed[rec]` is the slot the engine's record id `rec` was
    /// assigned to; `rec_of[slot]` is the inverse (stale for dead slots).
    /// `dirty` marks a pending lazy rebuild after a non-isolated delete.
    All {
        engine: Box<SgbAll<D>>,
        pushed: Vec<SlotId>,
        rec_of: Vec<RecordId>,
        dirty: bool,
    },
}

/// A similarity grouping maintained under point deltas.
///
/// Holds the points (in stable [`SlotId`] slots), the ε-grid, and the live
/// per-operator state, and applies [`insert`](Self::insert) /
/// [`delete`](Self::delete) in sub-linear time (SGB-All deletes of
/// non-isolated tuples defer an O(n) rebuild to the next snapshot —
/// see the module docs). [`snapshot`](Self::snapshot) materialises a
/// [`Grouping`] equal to `query.run(&live_points)`.
///
/// ```
/// use sgb_core::{MaintainedGrouping, SgbQuery};
/// use sgb_geom::Point;
///
/// let query = SgbQuery::any(1.5);
/// let points = vec![Point::new([0.0, 0.0]), Point::new([1.0, 0.0])];
/// let mut m = MaintainedGrouping::new(query.clone(), &points);
/// let far = m.insert(Point::new([9.0, 9.0]));
/// assert_eq!(m.snapshot().sorted_sizes(), vec![2, 1]);
/// m.delete(far);
/// m.delete(0);
/// assert_eq!(m.snapshot(), query.run(&[Point::new([1.0, 0.0])]));
/// ```
#[derive(Clone, Debug)]
pub struct MaintainedGrouping<const D: usize> {
    query: SgbQuery<D>,
    /// Point per slot; `None` once deleted. Never shrinks.
    slots: Vec<Option<Point<D>>>,
    live: usize,
    /// ε-grid over the live points (cell side = ε), the delta engine's own
    /// probe structure. `None` for SGB-Around, which needs no ε-probes.
    grid: Option<Grid<D, SlotId>>,
    state: OpState<D>,
    epoch: u64,
    /// Delta-counter sink ([`Counter::DeltasApplied`] /
    /// [`Counter::DeltasRejected`]); inert (`Telemetry::off`) by default.
    telemetry: Telemetry,
}

impl<const D: usize> MaintainedGrouping<D> {
    /// Builds the maintained state from an initial point set (slot ids
    /// `0..points.len()` in order).
    ///
    /// # Panics
    /// Like [`SgbQuery::run`] if any point has a non-finite coordinate.
    pub fn new(query: SgbQuery<D>, points: &[Point<D>]) -> Self {
        assert!(
            points.iter().all(Point::is_finite),
            "points must have finite coordinates"
        );
        let slots: Vec<Option<Point<D>>> = points.iter().copied().map(Some).collect();
        let live = slots.len();
        let metric = query.configured_metric();
        let (grid, state) = match &query.op {
            OpSpec::Any { eps } => {
                let mut grid = Grid::new(Grid::<D, SlotId>::side_for_eps(*eps));
                let mut dsu = TrackedDsu::new();
                for (slot, p) in points.iter().enumerate() {
                    grid.insert(*p, slot);
                    dsu.push();
                }
                // The exact bulk ε-join surfaces each within-ε pair exactly
                // once — the contract the edge counts rely on.
                grid.for_each_pair_within(*eps, metric, |&a, &b| {
                    dsu.add_edge(a, b);
                });
                (Some(grid), OpState::Any { dsu })
            }
            OpSpec::Around {
                centers,
                max_radius,
            } => {
                let base = query
                    .configured_algorithm()
                    .for_around()
                    .expect("validated at query construction");
                let (resolved, _) = cost::resolve_around(base, centers.len(), D);
                let cfg = query
                    .around_config(centers.clone(), *max_radius)
                    .algorithm(resolved);
                let index = Arc::new(build_center_index(resolved, cfg.rtree_fanout, &cfg.centers));
                let mut scratch = Vec::new();
                let assign = points
                    .iter()
                    .map(|p| {
                        let c = nearest_center_in(&index, &cfg, &mut scratch, p);
                        (!is_outlier(&cfg, p, c)).then_some(c)
                    })
                    .collect();
                (
                    None,
                    OpState::Around {
                        cfg,
                        index,
                        assign,
                        scratch,
                    },
                )
            }
            OpSpec::All { eps, .. } => {
                let mut grid = Grid::new(Grid::<D, SlotId>::side_for_eps(*eps));
                for (slot, p) in points.iter().enumerate() {
                    grid.insert(*p, slot);
                }
                let state = OpState::All {
                    engine: Box::new(Self::fresh_all_engine(&query, points.len())),
                    pushed: Vec::new(),
                    rec_of: Vec::new(),
                    dirty: false,
                };
                (Some(grid), state)
            }
        };
        let mut this = Self {
            query,
            slots,
            live,
            grid,
            state,
            epoch: 0,
            telemetry: Telemetry::off(),
        };
        if let OpState::All { .. } = this.state {
            this.rebuild_all();
        }
        this
    }

    /// The query this grouping is maintained for.
    pub fn query(&self) -> &SgbQuery<D> {
        &self.query
    }

    /// Installs a [`Telemetry`] sink. Applied deltas bump
    /// [`Counter::DeltasApplied`], rejected governed deltas bump
    /// [`Counter::DeltasRejected`], and snapshots carry the handle so
    /// [`Grouping::profile`] exposes the counts. The default `off` handle
    /// records nothing.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The installed telemetry sink (inert unless
    /// [`with_telemetry`](Self::with_telemetry) replaced it).
    pub fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Monotone delta counter: bumps on every applied insert or delete, so
    /// two equal epochs over the same initial build imply identical live
    /// state. The serving layer stamps published snapshots with it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live (non-deleted) points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + deleted).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The point stored in `slot`, or `None` when the slot was deleted or
    /// never allocated.
    pub fn point(&self, slot: SlotId) -> Option<Point<D>> {
        self.slots.get(slot).copied().flatten()
    }

    /// The live points in slot order — the exact input a from-scratch
    /// `query.run()` equal to [`snapshot`](Self::snapshot) would receive.
    pub fn live_points(&self) -> Vec<Point<D>> {
        self.slots.iter().filter_map(|s| *s).collect()
    }

    /// Applies one insert delta, returning the new point's slot id.
    ///
    /// Cost: one grid probe + DSU unions (SGB-Any), one nearest-center
    /// query (SGB-Around), one streaming push (SGB-All).
    ///
    /// # Panics
    /// If `p` has a non-finite coordinate.
    pub fn insert(&mut self, p: Point<D>) -> SlotId {
        assert!(p.is_finite(), "points must have finite coordinates");
        let slot = self.slots.len();
        let metric = self.query.configured_metric();
        let eps = self.query.eps();
        match &mut self.state {
            OpState::Any { dsu } => {
                let id = dsu.push();
                debug_assert_eq!(id, slot, "dsu ids track slots");
                let eps = eps.expect("Any queries have an eps");
                let grid = self.grid.as_mut().expect("Any maintains a grid");
                // Probe before inserting p, so p never pairs with itself;
                // each neighbor yields exactly one new edge.
                let mut neighbors = Vec::new();
                grid.for_each_within(&p, eps, metric, |q, &s| {
                    if metric.within(q, &p, eps) {
                        neighbors.push(s);
                    }
                });
                for n in neighbors {
                    dsu.add_edge(slot, n);
                }
                grid.insert(p, slot);
            }
            OpState::Around {
                cfg,
                index,
                assign,
                scratch,
            } => {
                let c = nearest_center_in(index, cfg, scratch, &p);
                assign.push((!is_outlier(cfg, &p, c)).then_some(c));
            }
            OpState::All {
                engine,
                pushed,
                rec_of,
                dirty,
            } => {
                let grid = self.grid.as_mut().expect("All maintains a grid");
                grid.insert(p, slot);
                if *dirty {
                    // The pending rebuild will re-push every live slot.
                    rec_of.push(usize::MAX);
                } else {
                    let rec = engine.push(p);
                    debug_assert_eq!(rec, pushed.len());
                    pushed.push(slot);
                    rec_of.push(rec);
                }
            }
        }
        self.slots.push(Some(p));
        self.live += 1;
        self.epoch += 1;
        self.telemetry.add(Counter::DeltasApplied, 1);
        slot
    }

    /// Governed twin of [`insert`](Self::insert): rejects non-finite
    /// coordinates as [`SgbError::NonFinite`] and honors the governor's
    /// deadline/cancellation instead of panicking or running away.
    ///
    /// Failure atomicity: an error raised **before** the delta touches the
    /// engine (validation, the governor check, the `_pre` chaos site)
    /// leaves the maintained state untouched. The `_post` chaos site fires
    /// **after** the delta applied — modelling a fault mid-transaction —
    /// so on any `Err` the caller must treat the state as unspecified and
    /// rebuild from its source of truth (the relation layer rebuilds from
    /// the table and restores the epoch with
    /// [`advance_epoch_to`](Self::advance_epoch_to)).
    pub fn try_insert(
        &mut self,
        p: Point<D>,
        governor: &QueryGovernor,
    ) -> Result<SlotId, SgbError> {
        self.governed(|this| {
            if !p.is_finite() {
                return Err(SgbError::NonFinite);
            }
            governor.check()?;
            failpoints::fail_point!("sgb_core::incremental::insert_pre", |_| Err(
                SgbError::Cancelled
            ));
            let slot = this.insert(p);
            failpoints::fail_point!("sgb_core::incremental::insert_post", |_| Err(
                SgbError::Cancelled
            ));
            Ok(slot)
        })
    }

    /// Runs one governed delta, bumping [`Counter::DeltasRejected`] on
    /// `Err`. (Applied deltas are counted at the apply site, so a fault
    /// *after* the apply honestly records both outcomes — the state is
    /// unspecified and the caller rebuilds.)
    fn governed<T>(
        &mut self,
        delta: impl FnOnce(&mut Self) -> Result<T, SgbError>,
    ) -> Result<T, SgbError> {
        let out = delta(self);
        if out.is_err() {
            self.telemetry.add(Counter::DeltasRejected, 1);
        }
        out
    }

    /// Governed twin of [`delete`](Self::delete), with the same failure
    /// atomicity contract as [`try_insert`](Self::try_insert): errors
    /// before the `_pre` site leave the state untouched; an `Err` after it
    /// means the caller must rebuild.
    pub fn try_delete(&mut self, slot: SlotId, governor: &QueryGovernor) -> Result<bool, SgbError> {
        self.governed(|this| {
            governor.check()?;
            failpoints::fail_point!("sgb_core::incremental::delete_pre", |_| Err(
                SgbError::Cancelled
            ));
            let applied = this.delete(slot);
            failpoints::fail_point!("sgb_core::incremental::delete_post", |_| Err(
                SgbError::Cancelled
            ));
            Ok(applied)
        })
    }

    /// Raises the epoch to at least `floor`. Serving layers that replace a
    /// faulted maintained state with a fresh [`new`](Self::new) build call
    /// this with the old engine's last epoch (plus the aborted delta) so
    /// published snapshot epochs stay **monotone** across the rebuild.
    pub fn advance_epoch_to(&mut self, floor: u64) {
        self.epoch = self.epoch.max(floor);
    }

    /// Applies one delete delta. Returns `false` (and changes nothing)
    /// when `slot` is unknown or already deleted.
    ///
    /// Cost: one grid probe plus — only when the deleted tuple could have
    /// split its component — a re-cluster scoped to that component's
    /// members (SGB-Any); O(1) (SGB-Around); one grid probe, plus a lazy
    /// rebuild deferred to the next snapshot when the tuple was not
    /// ε-isolated (SGB-All).
    pub fn delete(&mut self, slot: SlotId) -> bool {
        let Some(Some(p)) = self.slots.get(slot).copied() else {
            return false;
        };
        let metric = self.query.configured_metric();
        match &mut self.state {
            OpState::Any { dsu } => {
                let eps = self.query.eps().expect("Any queries have an eps");
                let grid = self.grid.as_mut().expect("Any maintains a grid");
                let removed = grid.remove(&p, &slot);
                debug_assert!(removed, "live slot is in the grid");
                // Exact live ε-degree of the deleted tuple (p itself is
                // already out of the grid).
                let mut neighbors = Vec::new();
                grid.for_each_within(&p, eps, metric, |q, &s| {
                    if metric.within(q, &p, eps) {
                        neighbors.push(s);
                    }
                });
                let deg = neighbors.len() as u64;
                let m = dsu.component_members(slot).len() as u64;
                let e = dsu.edge_count(slot);
                debug_assert!(e >= deg);
                let remaining = m - 1;
                // Removal provably cannot split the component when the
                // tuple is isolated (deg 0), a leaf (deg 1: any survivor
                // path through it would need two edges), or the remaining
                // members form a complete graph.
                if deg <= 1 || e - deg == remaining * remaining.saturating_sub(1) / 2 {
                    dsu.remove_member(slot, deg);
                } else {
                    // Scoped re-cluster: dissolve this component only and
                    // re-derive the surviving edges by probing each member.
                    // Every within-ε neighbor of a member was connected to
                    // it before the delete, so the probes stay inside the
                    // dissolved set; `s < q` admits each unordered pair
                    // exactly once, keeping the edge counts exact.
                    let members = dsu.dissolve_component(slot);
                    dsu.remove_member(slot, 0);
                    let grid = self.grid.as_ref().expect("Any maintains a grid");
                    let mut hits = Vec::new();
                    for &q in &members {
                        let q = q as usize;
                        if q == slot {
                            continue;
                        }
                        let qp = self.slots[q].expect("component members are live");
                        hits.clear();
                        grid.for_each_within(&qp, eps, metric, |r, &s| {
                            if s < q && metric.within(r, &qp, eps) {
                                hits.push(s);
                            }
                        });
                        for &s in &hits {
                            dsu.add_edge(q, s);
                        }
                    }
                }
            }
            OpState::Around { .. } => {
                // Assignment is per-tuple: dropping the slot is the whole
                // delta (the stale `assign` entry is skipped by snapshots).
            }
            OpState::All {
                engine,
                rec_of,
                dirty,
                ..
            } => {
                let eps = self.query.eps().expect("All queries have an eps");
                let grid = self.grid.as_mut().expect("All maintains a grid");
                let removed = grid.remove(&p, &slot);
                debug_assert!(removed, "live slot is in the grid");
                if !*dirty {
                    let mut isolated = true;
                    grid.for_each_within(&p, eps, metric, |q, _| {
                        if isolated && metric.within(q, &p, eps) {
                            isolated = false;
                        }
                    });
                    if !(isolated && engine.remove_isolated_singleton(rec_of[slot])) {
                        *dirty = true;
                    }
                }
            }
        }
        self.slots[slot] = None;
        self.live -= 1;
        self.epoch += 1;
        self.telemetry.add(Counter::DeltasApplied, 1);
        true
    }

    /// Materialises the current grouping, with record ids densely
    /// re-ranked over the live slots — equal (full [`Grouping`] equality)
    /// to `self.query().run(&self.live_points())`.
    ///
    /// Takes `&mut self` because SGB-All may owe a lazy rebuild after a
    /// non-isolated delete; concurrent readers are served published
    /// `Arc<Grouping>` snapshots by the relation layer, never this call.
    pub fn snapshot(&mut self) -> Grouping {
        if matches!(self.state, OpState::All { dirty: true, .. }) {
            self.rebuild_all();
        }
        // Dense rank of each live slot — the record ids a from-scratch run
        // over the live points would use.
        let mut rank = vec![usize::MAX; self.slots.len()];
        let mut next = 0;
        for (slot, s) in self.slots.iter().enumerate() {
            if s.is_some() {
                rank[slot] = next;
                next += 1;
            }
        }
        let selection = format!("maintained incrementally (epoch {})", self.epoch);
        let mut out = match &self.state {
            OpState::Any { dsu } => {
                // `groups()` orders components by smallest member and
                // members ascending; ranks are monotone in slots, so the
                // remap preserves exactly the order `into_groups` produces
                // over dense ids.
                let groups: Vec<Vec<RecordId>> = dsu
                    .groups()
                    .into_iter()
                    .map(|g| g.into_iter().map(|s| rank[s]).collect())
                    .collect();
                let base = self
                    .query
                    .configured_algorithm()
                    .for_any()
                    .expect("validated at query construction");
                let (resolved, _) = cost::resolve_any(base, self.live, D);
                Grouping::from_flat(
                    FlatGrouping {
                        groups,
                        eliminated: Vec::new(),
                    },
                    resolved.into(),
                    selection,
                    1,
                )
            }
            OpState::Around {
                cfg, index, assign, ..
            } => {
                let mut groups = vec![Vec::new(); cfg.centers.len()];
                let mut outliers = Vec::new();
                for (slot, s) in self.slots.iter().enumerate() {
                    if s.is_none() {
                        continue;
                    }
                    match assign[slot] {
                        Some(c) => groups[c].push(rank[slot]),
                        None => outliers.push(rank[slot]),
                    }
                }
                let resolved = match &**index {
                    CenterIndex::Scan => AroundAlgorithm::BruteForce,
                    CenterIndex::Tree(_) => AroundAlgorithm::Indexed,
                    CenterIndex::Cells(_) => AroundAlgorithm::Grid,
                };
                Grouping::from_around(
                    AroundGrouping { groups, outliers },
                    resolved.into(),
                    selection,
                    1,
                )
            }
            OpState::All { engine, pushed, .. } => {
                let resolved = engine.resolved_algorithm();
                let flat = engine.as_ref().clone().finish();
                let remap = |ids: Vec<RecordId>| -> Vec<RecordId> {
                    ids.into_iter().map(|rec| rank[pushed[rec]]).collect()
                };
                Grouping::from_flat(
                    FlatGrouping {
                        groups: flat.groups.into_iter().map(remap).collect(),
                        eliminated: remap(flat.eliminated),
                    },
                    resolved.into(),
                    selection,
                    1,
                )
            }
        };
        out.set_telemetry(self.telemetry.clone());
        out
    }

    /// A fresh SGB-All streaming engine for `n` points under this query's
    /// knobs ([`crate::Algorithm::Auto`] resolved from `n` — the concrete
    /// strategies are output-identical, so any resolution preserves
    /// snapshot ≡ recompute).
    fn fresh_all_engine(query: &SgbQuery<D>, n: usize) -> SgbAll<D> {
        let OpSpec::All { eps, overlap } = &query.op else {
            unreachable!("fresh_all_engine is only called for All queries");
        };
        let (resolved, _) = cost::resolve_all(query.configured_algorithm().for_all(), n, D);
        SgbAll::new(query.all_config(*eps, *overlap).algorithm(resolved))
    }

    /// (Re)builds the SGB-All replica from the live slots in slot order,
    /// restoring the invariant that the engine state equals a from-scratch
    /// stream over the live points.
    fn rebuild_all(&mut self) {
        let mut engine = Self::fresh_all_engine(&self.query, self.live);
        let mut pushed = Vec::with_capacity(self.live);
        let mut rec_of = vec![usize::MAX; self.slots.len()];
        for (slot, s) in self.slots.iter().enumerate() {
            if let Some(p) = s {
                let rec = engine.push(*p);
                rec_of[slot] = rec;
                pushed.push(slot);
            }
        }
        let OpState::All {
            engine: e,
            pushed: pu,
            rec_of: ro,
            dirty,
        } = &mut self.state
        else {
            unreachable!("rebuild_all is only called for All queries");
        };
        **e = engine;
        *pu = pushed;
        *ro = rec_of;
        *dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OverlapAction, SgbQuery};
    use sgb_geom::Metric;

    fn pt(x: f64, y: f64) -> Point<2> {
        Point::new([x, y])
    }

    /// Deterministic pseudo-random cloud.
    fn cloud(n: usize, seed: u64, scale: f64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        (0..n)
            .map(|_| Point::new([next() * scale, next() * scale]))
            .collect()
    }

    #[test]
    fn any_insert_merges_components() {
        let q = SgbQuery::any(1.0);
        let mut m = MaintainedGrouping::new(q.clone(), &[pt(0.0, 0.0), pt(3.0, 0.0)]);
        assert_eq!(m.snapshot().num_groups(), 2);
        // A bridge point connects both.
        m.insert(pt(1.0, 0.0));
        m.insert(pt(2.0, 0.0));
        let snap = m.snapshot();
        assert_eq!(snap.num_groups(), 1);
        assert_eq!(snap, q.run(&m.live_points()));
    }

    #[test]
    fn any_delete_splits_via_scoped_recluster() {
        // Chain 0–1–2: deleting the middle splits the component.
        let q = SgbQuery::any(1.0);
        let pts = [pt(0.0, 0.0), pt(1.0, 0.0), pt(2.0, 0.0)];
        let mut m = MaintainedGrouping::new(q.clone(), &pts);
        assert_eq!(m.snapshot().num_groups(), 1);
        assert!(m.delete(1));
        let snap = m.snapshot();
        assert_eq!(snap.num_groups(), 2);
        assert_eq!(snap, q.run(&m.live_points()));
        assert!(!m.delete(1), "double delete is a no-op");
    }

    #[test]
    fn around_reassigns_only_the_edited_tuple() {
        let q = SgbQuery::around(vec![pt(0.0, 0.0), pt(10.0, 0.0)]).max_radius(3.0);
        let mut m = MaintainedGrouping::new(q.clone(), &[pt(1.0, 0.0), pt(9.0, 0.0)]);
        let outlier = m.insert(pt(5.0, 0.0));
        assert_eq!(m.snapshot(), q.run(&m.live_points()));
        m.delete(outlier);
        m.delete(0);
        assert_eq!(m.snapshot(), q.run(&m.live_points()));
    }

    #[test]
    fn all_isolated_delete_takes_the_fast_path() {
        let q = SgbQuery::all(1.0).overlap(OverlapAction::Eliminate);
        let pts = [pt(0.0, 0.0), pt(0.5, 0.0), pt(50.0, 50.0)];
        let mut m = MaintainedGrouping::new(q.clone(), &pts);
        assert!(m.delete(2)); // isolated singleton: in-place removal
        match &m.state {
            OpState::All { dirty, .. } => assert!(!dirty, "isolated delete must stay clean"),
            _ => unreachable!(),
        }
        assert_eq!(m.snapshot(), q.run(&m.live_points()));
        assert!(m.delete(0)); // clustered: lazy rebuild
        match &m.state {
            OpState::All { dirty, .. } => assert!(dirty),
            _ => unreachable!(),
        }
        assert_eq!(m.snapshot(), q.run(&m.live_points()));
        match &m.state {
            OpState::All { dirty, .. } => assert!(!dirty, "snapshot settles the rebuild"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn mixed_script_matches_recompute_for_every_operator_and_metric() {
        let points = cloud(160, 0xD0, 8.0);
        for metric in Metric::ALL {
            let queries: Vec<SgbQuery<2>> = vec![
                SgbQuery::all(0.8).metric(metric),
                SgbQuery::all(0.8)
                    .metric(metric)
                    .overlap(OverlapAction::Eliminate),
                SgbQuery::any(0.8).metric(metric),
                SgbQuery::around(vec![pt(2.0, 2.0), pt(6.0, 6.0)])
                    .metric(metric)
                    .max_radius(2.5),
            ];
            for q in queries {
                let mut m = MaintainedGrouping::new(q.clone(), &points[..100]);
                let extra = cloud(30, 0xD1, 8.0);
                let mut state = 0xD2u64;
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as usize
                };
                for p in extra {
                    m.insert(p);
                    let victim = next() % m.slot_count();
                    m.delete(victim);
                    assert_eq!(m.snapshot(), q.run(&m.live_points()), "{metric} {q:?}");
                }
            }
        }
    }

    #[test]
    fn governed_deltas_validate_check_and_stay_atomic_pre_apply() {
        let q = SgbQuery::any(1.0);
        let mut m = MaintainedGrouping::new(q.clone(), &[pt(0.0, 0.0)]);
        let free = QueryGovernor::unrestricted();
        let slot = m.try_insert(pt(1.0, 0.0), &free).unwrap();
        assert!(m.try_delete(slot, &free).unwrap());
        assert!(matches!(
            m.try_insert(pt(f64::NAN, 0.0), &free),
            Err(SgbError::NonFinite)
        ));
        let token = crate::CancelToken::new();
        token.cancel();
        let cancelled = QueryGovernor::unrestricted().with_cancel_token(token);
        let before = m.epoch();
        assert!(matches!(
            m.try_insert(pt(2.0, 0.0), &cancelled),
            Err(SgbError::Cancelled)
        ));
        assert!(matches!(
            m.try_delete(0, &cancelled),
            Err(SgbError::Cancelled)
        ));
        assert_eq!(
            m.epoch(),
            before,
            "pre-apply failures leave the state untouched"
        );
        m.advance_epoch_to(100);
        assert_eq!(m.epoch(), 100);
        m.advance_epoch_to(5);
        assert_eq!(m.epoch(), 100, "the epoch never goes backwards");
        assert_eq!(m.snapshot(), q.run(&m.live_points()));
    }

    #[test]
    fn telemetry_counts_applied_and_rejected_deltas() {
        let tel = Telemetry::new();
        let q = SgbQuery::any(1.0);
        let mut m = MaintainedGrouping::new(q, &[pt(0.0, 0.0)]).with_telemetry(tel.clone());
        let free = QueryGovernor::unrestricted();
        let slot = m.try_insert(pt(1.0, 0.0), &free).unwrap();
        assert!(m.try_delete(slot, &free).unwrap());
        m.insert(pt(2.0, 0.0)); // ungoverned deltas count too
        assert!(matches!(
            m.try_insert(pt(f64::NAN, 0.0), &free),
            Err(SgbError::NonFinite)
        ));
        assert!(!m.try_delete(999, &free).unwrap(), "miss: applied, no-op");
        let profile = m.snapshot().profile().expect("snapshot carries the sink");
        assert_eq!(profile.counter(Counter::DeltasApplied), 3);
        assert_eq!(profile.counter(Counter::DeltasRejected), 1);
        let inert = MaintainedGrouping::new(SgbQuery::any(1.0), &[pt(0.0, 0.0)]);
        assert!(!inert.telemetry_handle().is_enabled());
    }

    #[test]
    fn delete_everything_then_refill() {
        let q = SgbQuery::any(0.5);
        let pts = cloud(40, 9, 3.0);
        let mut m = MaintainedGrouping::new(q.clone(), &pts);
        for slot in 0..40 {
            assert!(m.delete(slot));
        }
        assert!(m.is_empty());
        assert_eq!(m.snapshot(), q.run(&[]));
        for p in &pts {
            m.insert(*p);
        }
        assert_eq!(m.len(), 40);
        assert_eq!(m.snapshot(), q.run(&pts));
        assert_eq!(m.epoch(), 80);
    }
}
