#![warn(missing_docs)]

//! Disjoint-set union (Union-Find) over dense integer ids.
//!
//! SGB-Any (Section 7 of the paper) maintains its groups with "a Union-Find
//! data structure \[19\] to keep track of existing, newly created, and merged
//! groups": when a new point is within ε of points belonging to several
//! groups, the groups merge into one encompassing group (Figure 8b). This
//! crate implements the disjoint-set *forest* with path compression and
//! union by size, giving the `O(m α(n))` amortised bound the paper's
//! complexity analysis relies on.

/// A disjoint-set forest over elements `0..len`.
///
/// Elements are added with [`DisjointSet::push`] (SGB processes points in
/// arrival order, so ids are dense) or up-front with
/// [`DisjointSet::with_len`].
#[derive(Clone, Debug, Default)]
pub struct DisjointSet {
    /// parent[i] is i for roots.
    parent: Vec<u32>,
    /// size[i] is meaningful only for roots: the component size.
    size: Vec<u32>,
    /// Number of disjoint components.
    components: usize,
}

impl DisjointSet {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A forest of `len` singleton components.
    pub fn with_len(len: usize) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "DisjointSet supports at most u32::MAX elements"
        );
        Self {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements ever added.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the forest has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    #[inline]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Adds a new singleton element, returning its id.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        assert!(
            id < u32::MAX as usize,
            "DisjointSet supports at most u32::MAX elements"
        );
        self.parent.push(id as u32);
        self.size.push(1);
        self.components += 1;
        id
    }

    /// The canonical representative (root) of `x`'s component, with
    /// two-pass path compression.
    pub fn find(&mut self, x: usize) -> usize {
        debug_assert!(x < self.parent.len());
        // First pass: locate the root.
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Second pass: compress the path.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Root lookup without mutation (no compression); useful when only a
    /// shared reference is available.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut cur = x as u32;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
        }
        cur as usize
    }

    /// Merges the components of `a` and `b` (`MergeGroupsInsert`'s core).
    /// Returns the root of the merged component. Union by size keeps the
    /// forest shallow.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        big
    }

    /// `true` when `a` and `b` are in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s component.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Merges another forest over the **same** elements into this one:
    /// afterwards `a` and `b` are connected here iff they were connected
    /// in either forest — the union of the two edge sets.
    ///
    /// This is the shard-merge step of the parallel SGB-Any engine: each
    /// worker unions the ε-pairs of its cell shard into a private forest,
    /// and the forests fold into one with `len` cheap unions apiece.
    /// Because connectivity (and therefore [`into_groups`]'s output, which
    /// orders components and members by id alone) depends only on the
    /// union of the edge sets, the merged forest is bit-identical to a
    /// sequential run over all pairs in any order.
    ///
    /// [`into_groups`]: Self::into_groups
    ///
    /// # Panics
    ///
    /// Panics when the forests have different lengths.
    pub fn merge_from(&mut self, other: &DisjointSet) {
        assert_eq!(
            self.len(),
            other.len(),
            "can only merge forests over the same elements"
        );
        // Each element's parent edge carries the other forest's whole
        // connectivity: x ~ parent[x] spans every component.
        for x in 0..other.parent.len() {
            let p = other.parent[x] as usize;
            if p != x {
                self.union(x, p);
            }
        }
    }

    /// Groups all elements by component, returning one `Vec` of member ids
    /// per component. Members appear in increasing id order; component order
    /// follows the smallest member id. This materialises the final SGB-Any
    /// answer groups.
    pub fn into_groups(mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: Vec<Vec<usize>> = Vec::new();
        let mut root_slot: Vec<u32> = vec![u32::MAX; n];
        for x in 0..n {
            let r = self.find(x);
            let slot = if root_slot[r] == u32::MAX {
                root_slot[r] = by_root.len() as u32;
                by_root.push(Vec::new());
                by_root.len() - 1
            } else {
                root_slot[r] as usize
            };
            by_root[slot].push(x);
        }
        by_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_elements_are_singletons() {
        let mut dsu = DisjointSet::with_len(4);
        assert_eq!(dsu.components(), 4);
        for i in 0..4 {
            assert_eq!(dsu.find(i), i);
            assert_eq!(dsu.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut dsu = DisjointSet::with_len(5);
        dsu.union(0, 1);
        dsu.union(2, 3);
        assert_eq!(dsu.components(), 3);
        assert!(dsu.connected(0, 1));
        assert!(!dsu.connected(0, 2));
        dsu.union(1, 3);
        assert_eq!(dsu.components(), 2);
        assert!(dsu.connected(0, 2));
        assert_eq!(dsu.component_size(3), 4);
        assert!(!dsu.connected(0, 4));
    }

    #[test]
    fn union_is_idempotent() {
        let mut dsu = DisjointSet::with_len(3);
        let r1 = dsu.union(0, 1);
        let r2 = dsu.union(0, 1);
        assert_eq!(r1, r2);
        assert_eq!(dsu.components(), 2);
    }

    #[test]
    fn push_grows_forest() {
        let mut dsu = DisjointSet::new();
        assert!(dsu.is_empty());
        let a = dsu.push();
        let b = dsu.push();
        assert_eq!((a, b), (0, 1));
        assert_eq!(dsu.len(), 2);
        assert_eq!(dsu.components(), 2);
        dsu.union(a, b);
        assert_eq!(dsu.components(), 1);
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut dsu = DisjointSet::with_len(6);
        dsu.union(0, 1);
        dsu.union(1, 2);
        dsu.union(4, 5);
        for i in 0..6 {
            assert_eq!(dsu.find_immutable(i), dsu.clone().find(i));
        }
    }

    #[test]
    fn into_groups_materialises_components() {
        let mut dsu = DisjointSet::with_len(6);
        dsu.union(0, 2);
        dsu.union(2, 4);
        dsu.union(1, 5);
        let groups = dsu.into_groups();
        assert_eq!(groups, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
    }

    #[test]
    fn fig8b_merge_example() {
        // Figure 8b: x is within ε of members of g1 {a1,a2,a3}, g2 {c1,c2,c3}
        // and g3 {b1,b2}; all three merge into one group; g4 {d1,d2} stays.
        // ids: a1..a3 = 0..2, c1..c3 = 3..5, b1..b2 = 6..7, d1..d2 = 8..9, x = 10.
        let mut dsu = DisjointSet::with_len(11);
        dsu.union(0, 1);
        dsu.union(0, 2);
        dsu.union(3, 4);
        dsu.union(3, 5);
        dsu.union(6, 7);
        dsu.union(8, 9);
        assert_eq!(dsu.components(), 5);
        // x arrives: merge g1, g2, g3 with x.
        for neighbour in [0, 3, 6] {
            dsu.union(10, neighbour);
        }
        assert_eq!(dsu.components(), 2);
        assert_eq!(dsu.component_size(10), 9);
        assert_eq!(dsu.component_size(8), 2);
    }

    #[test]
    fn path_compression_flattens() {
        let mut dsu = DisjointSet::with_len(64);
        // Build a chain by always unioning into the larger side.
        for i in 1..64 {
            dsu.union(i - 1, i);
        }
        let root = dsu.find(63);
        // After compression every node points straight at the root.
        for i in 0..64 {
            let _ = dsu.find(i);
            assert_eq!(dsu.parent[i], root as u32);
        }
    }

    #[test]
    fn randomised_against_naive_labels() {
        // DSU must agree with a naive O(n²) label-propagation model.
        let mut dsu = DisjointSet::with_len(40);
        let mut labels: Vec<usize> = (0..40).collect();
        // Deterministic pseudo-random unions (LCG to avoid a rand dep here).
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..80 {
            let a = next() % 40;
            let b = next() % 40;
            dsu.union(a, b);
            let (la, lb) = (labels[a], labels[b]);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for a in 0..40 {
            for b in 0..40 {
                assert_eq!(dsu.connected(a, b), labels[a] == labels[b]);
            }
        }
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(dsu.components(), distinct.len());
    }
}
