#![warn(missing_docs)]

//! Disjoint-set union (Union-Find) over dense integer ids.
//!
//! SGB-Any (Section 7 of the paper) maintains its groups with "a Union-Find
//! data structure \[19\] to keep track of existing, newly created, and merged
//! groups": when a new point is within ε of points belonging to several
//! groups, the groups merge into one encompassing group (Figure 8b). This
//! crate implements the disjoint-set *forest* with path compression and
//! union by size, giving the `O(m α(n))` amortised bound the paper's
//! complexity analysis relies on.

/// A disjoint-set forest over elements `0..len`.
///
/// Elements are added with [`DisjointSet::push`] (SGB processes points in
/// arrival order, so ids are dense) or up-front with
/// [`DisjointSet::with_len`].
#[derive(Clone, Debug, Default)]
pub struct DisjointSet {
    /// parent[i] is i for roots.
    parent: Vec<u32>,
    /// size[i] is meaningful only for roots: the component size.
    size: Vec<u32>,
    /// Number of disjoint components.
    components: usize,
}

impl DisjointSet {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A forest of `len` singleton components.
    pub fn with_len(len: usize) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "DisjointSet supports at most u32::MAX elements"
        );
        Self {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements ever added.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the forest has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    #[inline]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Adds a new singleton element, returning its id.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        assert!(
            id < u32::MAX as usize,
            "DisjointSet supports at most u32::MAX elements"
        );
        self.parent.push(id as u32);
        self.size.push(1);
        self.components += 1;
        id
    }

    /// The canonical representative (root) of `x`'s component, with
    /// two-pass path compression.
    pub fn find(&mut self, x: usize) -> usize {
        debug_assert!(x < self.parent.len());
        // First pass: locate the root.
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Second pass: compress the path.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Root lookup without mutation (no compression); useful when only a
    /// shared reference is available.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut cur = x as u32;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
        }
        cur as usize
    }

    /// Merges the components of `a` and `b` (`MergeGroupsInsert`'s core).
    /// Returns the root of the merged component. Union by size keeps the
    /// forest shallow.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        big
    }

    /// `true` when `a` and `b` are in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s component.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Merges another forest over the **same** elements into this one:
    /// afterwards `a` and `b` are connected here iff they were connected
    /// in either forest — the union of the two edge sets.
    ///
    /// This is the shard-merge step of the parallel SGB-Any engine: each
    /// worker unions the ε-pairs of its cell shard into a private forest,
    /// and the forests fold into one with `len` cheap unions apiece.
    /// Because connectivity (and therefore [`into_groups`]'s output, which
    /// orders components and members by id alone) depends only on the
    /// union of the edge sets, the merged forest is bit-identical to a
    /// sequential run over all pairs in any order.
    ///
    /// [`into_groups`]: Self::into_groups
    ///
    /// # Panics
    ///
    /// Panics when the forests have different lengths.
    pub fn merge_from(&mut self, other: &DisjointSet) {
        assert_eq!(
            self.len(),
            other.len(),
            "can only merge forests over the same elements"
        );
        // Each element's parent edge carries the other forest's whole
        // connectivity: x ~ parent[x] spans every component.
        for x in 0..other.parent.len() {
            let p = other.parent[x] as usize;
            if p != x {
                self.union(x, p);
            }
        }
    }

    /// Fallible [`merge_from`](Self::merge_from): `pause` is invoked once
    /// per ~4096 merged elements, and its error abandons the merge. The
    /// edge set absorbed so far is a subset of `other`'s — callers that
    /// abort discard this forest, so partial connectivity never escapes.
    ///
    /// This is the governance hook of the parallel SGB-Any shard fold:
    /// `pause` ticks the query deadline/cancellation check, keeping even
    /// the merge phase of a huge join responsive.
    ///
    /// # Errors
    ///
    /// Returns the first error `pause` reports.
    ///
    /// # Panics
    ///
    /// Panics when the forests have different lengths.
    pub fn try_merge_from<E>(
        &mut self,
        other: &DisjointSet,
        mut pause: impl FnMut() -> Result<(), E>,
    ) -> Result<(), E> {
        assert_eq!(
            self.len(),
            other.len(),
            "can only merge forests over the same elements"
        );
        for x in 0..other.parent.len() {
            if x % 4096 == 0 {
                pause()?;
            }
            let p = other.parent[x] as usize;
            if p != x {
                self.union(x, p);
            }
        }
        Ok(())
    }

    /// Groups all elements by component, returning one `Vec` of member ids
    /// per component. Members appear in increasing id order; component order
    /// follows the smallest member id. This materialises the final SGB-Any
    /// answer groups.
    pub fn into_groups(mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: Vec<Vec<usize>> = Vec::new();
        let mut root_slot: Vec<u32> = vec![u32::MAX; n];
        for x in 0..n {
            let r = self.find(x);
            let slot = if root_slot[r] == u32::MAX {
                root_slot[r] = by_root.len() as u32;
                by_root.push(Vec::new());
                by_root.len() - 1
            } else {
                root_slot[r] as usize
            };
            by_root[slot].push(x);
        }
        by_root
    }
}

/// A deletion-aware disjoint-set forest: [`DisjointSet`] extended with
/// per-component **member lists** and **edge counts**, the bookkeeping the
/// incremental SGB-Any engine needs to decide whether removing a tuple can
/// split its ε-connectivity component without re-clustering.
///
/// Elements are dense slot ids added with [`TrackedDsu::push`]; ids are
/// never reused. Edges are added with [`TrackedDsu::add_edge`] — the caller
/// must add each unordered ε-pair **exactly once** so that
/// [`edge_count`](Self::edge_count) equals the true edge cardinality of the
/// component (the completeness test `|E| = m(m−1)/2` relies on it).
///
/// Deletion never restructures the forest: a removed element becomes a
/// *ghost* — it stays in the parent array (possibly even as a component's
/// root, holding that component's member list) but is excluded from member
/// lists and [`groups`](Self::groups). When a removal could split a
/// component the caller dissolves it with
/// [`dissolve_component`](Self::dissolve_component) and re-adds the
/// surviving edges.
#[derive(Clone, Debug, Default)]
pub struct TrackedDsu {
    /// parent[i] is i for roots; chains may pass through ghosts.
    parent: Vec<u32>,
    /// Live member ids per component; meaningful only at roots.
    members: Vec<Vec<u32>>,
    /// Number of edges ever added to the component minus those removed
    /// with members; meaningful only at roots.
    edges: Vec<u64>,
    /// `false` once an element has been removed (ghost).
    alive: Vec<bool>,
    /// Number of live elements.
    live: usize,
    /// Number of live components (components with ≥ 1 live member).
    components: usize,
}

impl TrackedDsu {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new live singleton element, returning its id.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        assert!(
            id < u32::MAX as usize,
            "TrackedDsu supports at most u32::MAX elements"
        );
        self.parent.push(id as u32);
        self.members.push(vec![id as u32]);
        self.edges.push(0);
        self.alive.push(true);
        self.live += 1;
        self.components += 1;
        id
    }

    /// Number of elements ever added (live + ghosts).
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when no element was ever added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of live (non-removed) elements.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Number of components with at least one live member.
    #[inline]
    pub fn components(&self) -> usize {
        self.components
    }

    /// `true` when `x` has not been removed.
    #[inline]
    pub fn is_alive(&self, x: usize) -> bool {
        self.alive[x]
    }

    /// The canonical representative (root) of `x`'s component, with
    /// two-pass path compression. Ghosts keep their component identity so
    /// chains through them stay valid.
    pub fn find(&mut self, x: usize) -> usize {
        debug_assert!(x < self.parent.len());
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Root lookup without mutation (no compression).
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut cur = x as u32;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
        }
        cur as usize
    }

    /// Records the ε-edge `{a, b}` (both must be live, `a ≠ b`), merging
    /// their components when distinct. Returns the root of the (possibly
    /// merged) component. Each unordered pair must be added exactly once
    /// for the edge count to stay exact.
    pub fn add_edge(&mut self, a: usize, b: usize) -> usize {
        debug_assert!(a != b, "self-loops are not ε-edges");
        debug_assert!(self.alive[a] && self.alive[b], "edges join live members");
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            self.edges[ra] += 1;
            return ra;
        }
        // Union by live member count: small-to-large keeps the total
        // member-list merge cost O(n log n).
        let (big, small) = if self.members[ra].len() >= self.members[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        let moved = std::mem::take(&mut self.members[small]);
        self.members[big].extend(moved);
        self.edges[big] += self.edges[small] + 1;
        self.edges[small] = 0;
        self.components -= 1;
        big
    }

    /// Live members of `x`'s component (unordered).
    pub fn component_members(&mut self, x: usize) -> &[u32] {
        let r = self.find(x);
        &self.members[r]
    }

    /// Number of edges currently attributed to `x`'s component.
    pub fn edge_count(&mut self, x: usize) -> u64 {
        let r = self.find(x);
        self.edges[r]
    }

    /// Removes `x` from its component without restructuring: `x` becomes a
    /// ghost, its component loses one member and `degree` edges (the
    /// caller supplies `x`'s exact live ε-degree). **Only sound when the
    /// removal cannot split the component** — `x` is a singleton, a leaf
    /// (`degree ≤ 1`), or the caller has proven the remainder connected
    /// (e.g. the remaining edge count equals the complete-graph count).
    pub fn remove_member(&mut self, x: usize, degree: u64) {
        assert!(self.alive[x], "cannot remove a ghost");
        let r = self.find(x);
        debug_assert!(self.edges[r] >= degree);
        let pos = self.members[r]
            .iter()
            .position(|&m| m as usize == x)
            .expect("live member is listed at its root");
        self.members[r].swap_remove(pos);
        self.edges[r] -= degree;
        self.alive[x] = false;
        self.live -= 1;
        if self.members[r].is_empty() {
            self.edges[r] = 0;
            self.components -= 1;
        }
    }

    /// Dissolves `x`'s component: every live member (including `x`) is
    /// reset to a singleton with zero edges, and the former member list is
    /// returned. The caller then re-adds the surviving edges (each
    /// unordered pair once) — the scoped re-cluster path of a deletion
    /// that may have split the component.
    pub fn dissolve_component(&mut self, x: usize) -> Vec<u32> {
        let r = self.find(x);
        let members = std::mem::take(&mut self.members[r]);
        self.edges[r] = 0;
        self.components -= 1;
        for &m in &members {
            self.parent[m as usize] = m;
            self.members[m as usize] = vec![m];
            self.edges[m as usize] = 0;
            self.components += 1;
        }
        members
    }

    /// Groups all live elements by component: one `Vec` of member ids per
    /// component, members in increasing id order, components ordered by
    /// smallest member id — the same canonical order as
    /// [`DisjointSet::into_groups`] over the live subset.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: Vec<Vec<usize>> = Vec::new();
        let mut root_slot: Vec<u32> = vec![u32::MAX; n];
        for x in 0..n {
            if !self.alive[x] {
                continue;
            }
            let r = self.find_immutable(x);
            let slot = if root_slot[r] == u32::MAX {
                root_slot[r] = by_root.len() as u32;
                by_root.push(Vec::new());
                by_root.len() - 1
            } else {
                root_slot[r] as usize
            };
            by_root[slot].push(x);
        }
        by_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_merge_from_pauses_and_propagates_errors() {
        // Ok pauses: identical outcome to the infallible merge.
        let mut other = DisjointSet::with_len(10_000);
        for x in 0..9_999 {
            other.union(x, x + 1);
        }
        let mut merged = DisjointSet::with_len(10_000);
        let mut pauses = 0usize;
        merged
            .try_merge_from(&other, || {
                pauses += 1;
                Ok::<(), ()>(())
            })
            .unwrap_or(());
        assert_eq!(merged.components(), 1);
        assert!(pauses >= 2, "pause ran periodically, {pauses} times");
        // Failing pause: the error comes back and the merge stops.
        let mut aborted = DisjointSet::with_len(10_000);
        assert_eq!(aborted.try_merge_from(&other, || Err("stop")), Err("stop"));
        assert_eq!(aborted.components(), 10_000, "nothing merged before tick 0");
    }

    #[test]
    fn fresh_elements_are_singletons() {
        let mut dsu = DisjointSet::with_len(4);
        assert_eq!(dsu.components(), 4);
        for i in 0..4 {
            assert_eq!(dsu.find(i), i);
            assert_eq!(dsu.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut dsu = DisjointSet::with_len(5);
        dsu.union(0, 1);
        dsu.union(2, 3);
        assert_eq!(dsu.components(), 3);
        assert!(dsu.connected(0, 1));
        assert!(!dsu.connected(0, 2));
        dsu.union(1, 3);
        assert_eq!(dsu.components(), 2);
        assert!(dsu.connected(0, 2));
        assert_eq!(dsu.component_size(3), 4);
        assert!(!dsu.connected(0, 4));
    }

    #[test]
    fn union_is_idempotent() {
        let mut dsu = DisjointSet::with_len(3);
        let r1 = dsu.union(0, 1);
        let r2 = dsu.union(0, 1);
        assert_eq!(r1, r2);
        assert_eq!(dsu.components(), 2);
    }

    #[test]
    fn push_grows_forest() {
        let mut dsu = DisjointSet::new();
        assert!(dsu.is_empty());
        let a = dsu.push();
        let b = dsu.push();
        assert_eq!((a, b), (0, 1));
        assert_eq!(dsu.len(), 2);
        assert_eq!(dsu.components(), 2);
        dsu.union(a, b);
        assert_eq!(dsu.components(), 1);
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut dsu = DisjointSet::with_len(6);
        dsu.union(0, 1);
        dsu.union(1, 2);
        dsu.union(4, 5);
        for i in 0..6 {
            assert_eq!(dsu.find_immutable(i), dsu.clone().find(i));
        }
    }

    #[test]
    fn into_groups_materialises_components() {
        let mut dsu = DisjointSet::with_len(6);
        dsu.union(0, 2);
        dsu.union(2, 4);
        dsu.union(1, 5);
        let groups = dsu.into_groups();
        assert_eq!(groups, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
    }

    #[test]
    fn fig8b_merge_example() {
        // Figure 8b: x is within ε of members of g1 {a1,a2,a3}, g2 {c1,c2,c3}
        // and g3 {b1,b2}; all three merge into one group; g4 {d1,d2} stays.
        // ids: a1..a3 = 0..2, c1..c3 = 3..5, b1..b2 = 6..7, d1..d2 = 8..9, x = 10.
        let mut dsu = DisjointSet::with_len(11);
        dsu.union(0, 1);
        dsu.union(0, 2);
        dsu.union(3, 4);
        dsu.union(3, 5);
        dsu.union(6, 7);
        dsu.union(8, 9);
        assert_eq!(dsu.components(), 5);
        // x arrives: merge g1, g2, g3 with x.
        for neighbour in [0, 3, 6] {
            dsu.union(10, neighbour);
        }
        assert_eq!(dsu.components(), 2);
        assert_eq!(dsu.component_size(10), 9);
        assert_eq!(dsu.component_size(8), 2);
    }

    #[test]
    fn path_compression_flattens() {
        let mut dsu = DisjointSet::with_len(64);
        // Build a chain by always unioning into the larger side.
        for i in 1..64 {
            dsu.union(i - 1, i);
        }
        let root = dsu.find(63);
        // After compression every node points straight at the root.
        for i in 0..64 {
            let _ = dsu.find(i);
            assert_eq!(dsu.parent[i], root as u32);
        }
    }

    #[test]
    fn tracked_counts_edges_and_members() {
        let mut dsu = TrackedDsu::new();
        for _ in 0..5 {
            dsu.push();
        }
        assert_eq!(dsu.components(), 5);
        dsu.add_edge(0, 1);
        dsu.add_edge(1, 2);
        dsu.add_edge(0, 2); // intra-component edge: count bumps, no merge
        assert_eq!(dsu.components(), 3);
        assert_eq!(dsu.edge_count(0), 3);
        let mut m = dsu.component_members(2).to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2]);
        assert_eq!(dsu.edge_count(3), 0);
        assert_eq!(dsu.groups(), vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn tracked_leaf_removal_keeps_component_intact() {
        // 0–1–2 chain plus 0–2: removing leaf-ish 1 (degree 2 here, but
        // remainder {0,2} is complete) must keep {0,2} together.
        let mut dsu = TrackedDsu::new();
        for _ in 0..3 {
            dsu.push();
        }
        dsu.add_edge(0, 1);
        dsu.add_edge(1, 2);
        dsu.add_edge(0, 2);
        dsu.remove_member(1, 2);
        assert!(!dsu.is_alive(1));
        assert_eq!(dsu.live_count(), 2);
        assert_eq!(dsu.edge_count(0), 1);
        assert_eq!(dsu.groups(), vec![vec![0, 2]]);
    }

    #[test]
    fn tracked_ghost_root_keeps_serving_its_component() {
        // Make element 0 the root, then remove it: 1 and 2 stay connected
        // through the ghost.
        let mut dsu = TrackedDsu::new();
        for _ in 0..3 {
            dsu.push();
        }
        dsu.add_edge(0, 1);
        dsu.add_edge(0, 2);
        dsu.add_edge(1, 2);
        dsu.remove_member(0, 2);
        assert_eq!(dsu.groups(), vec![vec![1, 2]]);
        assert_eq!(dsu.edge_count(1), 1);
        assert_eq!(dsu.components(), 1);
    }

    #[test]
    fn tracked_dissolve_and_recluster_splits() {
        // Star around 2: 0–2, 1–2, 3–2. Deleting the hub splits the rest
        // into singletons; the caller dissolves and re-adds no edges.
        let mut dsu = TrackedDsu::new();
        for _ in 0..4 {
            dsu.push();
        }
        dsu.add_edge(0, 2);
        dsu.add_edge(1, 2);
        dsu.add_edge(3, 2);
        assert_eq!(dsu.components(), 1);
        let mut members = dsu.dissolve_component(2);
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3]);
        assert_eq!(dsu.components(), 4);
        dsu.remove_member(2, 0);
        assert_eq!(dsu.groups(), vec![vec![0], vec![1], vec![3]]);
        // Re-cluster with a surviving edge: 0–1 reconnects part of it.
        dsu.add_edge(0, 1);
        assert_eq!(dsu.groups(), vec![vec![0, 1], vec![3]]);
        assert_eq!(dsu.edge_count(0), 1);
    }

    #[test]
    fn tracked_singleton_removal_drops_component() {
        let mut dsu = TrackedDsu::new();
        dsu.push();
        dsu.push();
        dsu.remove_member(0, 0);
        assert_eq!(dsu.components(), 1);
        assert_eq!(dsu.live_count(), 1);
        assert_eq!(dsu.groups(), vec![vec![1]]);
    }

    #[test]
    fn tracked_groups_match_plain_dsu_over_live_subset() {
        // Same edge script into both structures; TrackedDsu::groups must
        // equal DisjointSet::into_groups when nothing was removed.
        let mut tracked = TrackedDsu::new();
        let mut plain = DisjointSet::new();
        for _ in 0..12 {
            tracked.push();
            plain.push();
        }
        let edges = [(0, 5), (5, 7), (2, 3), (3, 2), (8, 9), (10, 11), (9, 10)];
        for (a, b) in edges {
            tracked.add_edge(a, b);
            plain.union(a, b);
        }
        assert_eq!(tracked.groups(), plain.into_groups());
    }

    #[test]
    fn randomised_against_naive_labels() {
        // DSU must agree with a naive O(n²) label-propagation model.
        let mut dsu = DisjointSet::with_len(40);
        let mut labels: Vec<usize> = (0..40).collect();
        // Deterministic pseudo-random unions (LCG to avoid a rand dep here).
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..80 {
            let a = next() % 40;
            let b = next() % 40;
            dsu.union(a, b);
            let (la, lb) = (labels[a], labels[b]);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for a in 0..40 {
            for b in 0..40 {
                assert_eq!(dsu.connected(a, b), labels[a] == labels[b]);
            }
        }
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(dsu.components(), distinct.len());
    }
}
