//! Public-API invariant tests for the disjoint-set forest: union/find
//! algebra, component bookkeeping, and path-compression behaviour.

use sgb_dsu::DisjointSet;

/// Deterministic pseudo-random stream (LCG) so the tests need no deps.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize
    }
}

#[test]
fn find_is_idempotent_and_canonical() {
    let mut dsu = DisjointSet::with_len(32);
    let mut lcg = Lcg(7);
    for _ in 0..48 {
        let (a, b) = (lcg.next() % 32, lcg.next() % 32);
        dsu.union(a, b);
    }
    for x in 0..32 {
        let r = dsu.find(x);
        // The representative is itself a root, and stable under repetition.
        assert_eq!(dsu.find(r), r);
        assert_eq!(dsu.find(x), r);
        // The immutable lookup agrees with the compressing one.
        assert_eq!(dsu.find_immutable(x), r);
    }
}

#[test]
fn union_returns_the_common_root() {
    let mut dsu = DisjointSet::with_len(8);
    let r = dsu.union(1, 5);
    assert_eq!(dsu.find(1), r);
    assert_eq!(dsu.find(5), r);
    // Unioning two members of one component is a no-op returning that root.
    let again = dsu.union(5, 1);
    assert_eq!(again, r);
    assert_eq!(dsu.components(), 7);
}

#[test]
fn connectivity_is_an_equivalence_relation() {
    let mut dsu = DisjointSet::with_len(24);
    let mut lcg = Lcg(99);
    for _ in 0..30 {
        let (a, b) = (lcg.next() % 24, lcg.next() % 24);
        dsu.union(a, b);
    }
    for a in 0..24 {
        assert!(dsu.connected(a, a), "reflexive");
        for b in 0..24 {
            assert_eq!(dsu.connected(a, b), dsu.connected(b, a), "symmetric");
            for c in 0..24 {
                if dsu.connected(a, b) && dsu.connected(b, c) {
                    assert!(dsu.connected(a, c), "transitive");
                }
            }
        }
    }
}

#[test]
fn component_sizes_partition_the_universe() {
    let mut dsu = DisjointSet::with_len(40);
    let mut lcg = Lcg(3);
    for _ in 0..25 {
        let (a, b) = (lcg.next() % 40, lcg.next() % 40);
        dsu.union(a, b);
    }
    // Every root's size counts its members; summed over roots that is n.
    let mut total = 0;
    for x in 0..40 {
        if dsu.find(x) == x {
            total += dsu.component_size(x);
        }
    }
    assert_eq!(total, 40);
    // And the number of roots is the component count.
    let roots = (0..40).filter(|&x| dsu.find_immutable(x) == x).count();
    assert_eq!(roots, dsu.components());
}

#[test]
fn into_groups_is_a_partition_in_canonical_order() {
    let mut dsu = DisjointSet::with_len(30);
    let mut lcg = Lcg(1234);
    for _ in 0..20 {
        let (a, b) = (lcg.next() % 30, lcg.next() % 30);
        dsu.union(a, b);
    }
    let expected_components = dsu.components();
    let groups = dsu.into_groups();
    assert_eq!(groups.len(), expected_components);
    // Members sorted within groups; groups ordered by smallest member; the
    // concatenation is exactly 0..30.
    let mut seen = vec![false; 30];
    let mut prev_head = None;
    for g in &groups {
        assert!(!g.is_empty());
        assert!(g.windows(2).all(|w| w[0] < w[1]), "members ascend: {g:?}");
        if let Some(prev) = prev_head {
            assert!(g[0] > prev, "groups ordered by smallest member");
        }
        prev_head = Some(g[0]);
        for &m in g {
            assert!(!seen[m], "duplicate member {m}");
            seen[m] = true;
        }
    }
    assert!(seen.into_iter().all(|s| s), "every element appears");
}

#[test]
fn push_after_unions_keeps_bookkeeping_consistent() {
    let mut dsu = DisjointSet::new();
    for _ in 0..10 {
        dsu.push();
    }
    dsu.union(0, 9);
    dsu.union(1, 2);
    assert_eq!(dsu.components(), 8);
    // New pushes arrive as singletons, untouched by prior unions.
    let fresh = dsu.push();
    assert_eq!(fresh, 10);
    assert_eq!(dsu.components(), 9);
    assert_eq!(dsu.component_size(fresh), 1);
    assert!(!dsu.connected(fresh, 0));
    dsu.union(fresh, 1);
    assert!(dsu.connected(fresh, 2));
}

#[test]
fn adversarial_chain_still_answers_correctly() {
    // A linear chain is the classic worst case that path compression and
    // union-by-size exist to handle; verify answers stay exact on a large
    // instance (the performance claim itself is covered by bench_dsu).
    let n = 10_000;
    let mut dsu = DisjointSet::with_len(n);
    for i in 1..n {
        dsu.union(i - 1, i);
    }
    assert_eq!(dsu.components(), 1);
    assert!(dsu.connected(0, n - 1));
    assert_eq!(dsu.component_size(0), n);
    // After one full find pass, the immutable lookup (which does not
    // compress) resolves every element in one hop to the same root.
    let root = dsu.find(0);
    for x in 0..n {
        dsu.find(x);
    }
    for x in 0..n {
        assert_eq!(dsu.find_immutable(x), root);
    }
}

#[test]
fn shard_merged_forests_are_bit_identical_to_a_sequential_run() {
    // The parallel SGB-Any invariant: partition a random edge list into k
    // shards, union each shard into a private forest, fold the forests
    // with `merge_from` — the merged forest's `into_groups` output must be
    // bit-identical (group numbering, member order) to a single sequential
    // forest over all edges, for every shard count and edge permutation.
    let n = 120;
    let mut lcg = Lcg(0x5EED);
    let edges: Vec<(usize, usize)> = (0..220).map(|_| (lcg.next() % n, lcg.next() % n)).collect();
    let mut sequential = DisjointSet::with_len(n);
    for &(a, b) in &edges {
        sequential.union(a, b);
    }
    let expected = sequential.into_groups();
    for shards in [1usize, 2, 3, 7, 16] {
        let mut forests: Vec<DisjointSet> = (0..shards).map(|_| DisjointSet::with_len(n)).collect();
        // Deterministic but arbitrary shard assignment, unrelated to edge
        // order — like hashed grid cells.
        for (i, &(a, b)) in edges.iter().enumerate() {
            forests[(i * 7 + 3) % shards].union(a, b);
        }
        let mut merged = DisjointSet::with_len(n);
        for f in &forests {
            merged.merge_from(f);
        }
        assert_eq!(merged.components(), expected.len(), "shards={shards}");
        assert_eq!(merged.into_groups(), expected, "shards={shards}");
    }
}

#[test]
fn merge_from_with_disjoint_edge_sets_unions_connectivity() {
    let mut a = DisjointSet::with_len(6);
    a.union(0, 1);
    a.union(2, 3);
    let mut b = DisjointSet::with_len(6);
    b.union(1, 2);
    b.union(4, 5);
    a.merge_from(&b);
    assert!(a.connected(0, 3), "connectivity is the union of edge sets");
    assert!(a.connected(4, 5));
    assert!(!a.connected(0, 4));
    assert_eq!(a.components(), 2);
    // Merging an all-singleton forest is a no-op.
    let before = a.clone().into_groups();
    a.merge_from(&DisjointSet::with_len(6));
    assert_eq!(a.into_groups(), before);
}

#[test]
#[should_panic(expected = "same elements")]
fn merge_from_rejects_length_mismatch() {
    let mut a = DisjointSet::with_len(4);
    a.merge_from(&DisjointSet::with_len(5));
}

#[test]
fn interleaved_random_model_check() {
    // Model-check against naive label propagation with pushes interleaved
    // between unions (the seed's unit test only covers a fixed universe).
    let mut dsu = DisjointSet::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut lcg = Lcg(0xDEADBEEF);
    for round in 0..200 {
        if labels.is_empty() || round % 3 == 0 {
            let id = dsu.push();
            labels.push(id);
            assert_eq!(labels.len() - 1, id);
        } else {
            let a = lcg.next() % labels.len();
            let b = lcg.next() % labels.len();
            dsu.union(a, b);
            let (la, lb) = (labels[a], labels[b]);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
    }
    for a in 0..labels.len() {
        for b in 0..labels.len() {
            assert_eq!(dsu.connected(a, b), labels[a] == labels[b]);
        }
    }
    let distinct: std::collections::HashSet<_> = labels.iter().collect();
    assert_eq!(dsu.components(), distinct.len());
}
