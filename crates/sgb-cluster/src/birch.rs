//! BIRCH clustering via a CF-tree (clustering-feature tree).
//!
//! BIRCH [Zhang, Ramakrishnan, Livny 1996] summarises the dataset in one
//! pass into a height-balanced tree of *clustering features*
//! `CF = (N, LS, SS)` — count, linear sum and squared sum of the points of a
//! subcluster — then treats the leaf entries as clusters. The CF algebra
//! makes insertions and merges constant-time per entry.
//!
//! Tree routing and the final nearest-centroid assignment run under a
//! configurable [`Metric`], matching the norms of the SGB operators the
//! paper compares against. The absorption threshold stays the RMS radius —
//! it is derived from the `SS` sum and is inherently Euclidean.

use sgb_geom::{Metric, Point};

/// A clustering feature: the additive summary of a subcluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cf<const D: usize> {
    /// Number of points.
    pub n: u64,
    /// Per-dimension linear sum `Σ xᵢ`.
    pub ls: [f64; D],
    /// Scalar squared sum `Σ ‖xᵢ‖²`.
    pub ss: f64,
}

impl<const D: usize> Cf<D> {
    /// The empty feature (additive identity).
    pub fn zero() -> Self {
        Self {
            n: 0,
            ls: [0.0; D],
            ss: 0.0,
        }
    }

    /// The feature of a single point.
    pub fn from_point(p: &Point<D>) -> Self {
        let mut cf = Self::zero();
        cf.add_point(p);
        cf
    }

    /// Absorbs one point.
    pub fn add_point(&mut self, p: &Point<D>) {
        self.n += 1;
        let mut norm2 = 0.0;
        for d in 0..D {
            self.ls[d] += p.coord(d);
            norm2 += p.coord(d) * p.coord(d);
        }
        self.ss += norm2;
    }

    /// Merges another feature (CF additivity theorem).
    pub fn merge(&mut self, other: &Cf<D>) {
        self.n += other.n;
        for d in 0..D {
            self.ls[d] += other.ls[d];
        }
        self.ss += other.ss;
    }

    /// The subcluster centroid.
    pub fn centroid(&self) -> Point<D> {
        debug_assert!(self.n > 0);
        let mut c = [0.0; D];
        for (d, v) in c.iter_mut().enumerate() {
            *v = self.ls[d] / self.n as f64;
        }
        Point::new(c)
    }

    /// RMS radius `sqrt(SS/N − ‖centroid‖²)`; 0 for singletons.
    pub fn radius(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mut c2 = 0.0;
        for d in 0..D {
            let c = self.ls[d] / n;
            c2 += c * c;
        }
        (self.ss / n - c2).max(0.0).sqrt()
    }

    /// The radius this feature would have after absorbing `p`.
    pub fn radius_with(&self, p: &Point<D>) -> f64 {
        let mut tmp = *self;
        tmp.add_point(p);
        tmp.radius()
    }
}

/// Configuration for [`birch`].
#[derive(Clone, Debug, PartialEq)]
pub struct BirchConfig {
    /// Branching factor `B` of internal nodes.
    pub branching: usize,
    /// Maximum entries `L` per leaf.
    pub leaf_capacity: usize,
    /// Radius threshold `T`: a leaf entry absorbs a point only while its
    /// RMS radius stays at or below `T`.
    pub threshold: f64,
    /// Distance function for tree routing (closest child / leaf entry) and
    /// the final nearest-centroid assignment. The RMS radius threshold is
    /// Euclidean regardless.
    pub metric: Metric,
}

impl BirchConfig {
    /// A configuration with conventional defaults (`B = 8`, `L = 8`, `L2`).
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold >= 0.0 && threshold.is_finite(),
            "threshold must be finite and non-negative"
        );
        Self {
            branching: 8,
            leaf_capacity: 8,
            threshold,
            metric: Metric::L2,
        }
    }

    /// Sets the routing/assignment metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the branching factor.
    pub fn branching(mut self, b: usize) -> Self {
        assert!(b >= 2, "branching factor must be at least 2");
        self.branching = b;
        self
    }

    /// Sets the leaf capacity.
    pub fn leaf_capacity(mut self, l: usize) -> Self {
        assert!(l >= 2, "leaf capacity must be at least 2");
        self.leaf_capacity = l;
        self
    }
}

/// Output of [`birch`].
#[derive(Clone, Debug)]
pub struct BirchResult<const D: usize> {
    /// One feature per discovered subcluster (the CF-tree leaf entries).
    pub clusters: Vec<Cf<D>>,
    /// Index into `clusters` per input point (nearest-centroid assignment,
    /// the lightweight variant of BIRCH's global phase).
    pub assignment: Vec<usize>,
}

enum NodeKind<const D: usize> {
    Leaf(Vec<Cf<D>>),
    Internal(Vec<usize>),
}

struct Node<const D: usize> {
    cf: Cf<D>,
    kind: NodeKind<D>,
}

struct CfTree<const D: usize> {
    cfg: BirchConfig,
    nodes: Vec<Node<D>>,
    root: usize,
}

impl<const D: usize> CfTree<D> {
    fn new(cfg: BirchConfig) -> Self {
        let root = Node {
            cf: Cf::zero(),
            kind: NodeKind::Leaf(Vec::new()),
        };
        Self {
            cfg,
            nodes: vec![root],
            root: 0,
        }
    }

    fn insert(&mut self, p: &Point<D>) {
        if let Some(sibling) = self.insert_rec(self.root, p) {
            // Root split: grow by one level.
            let old_root = self.root;
            let mut cf = self.nodes[old_root].cf;
            cf.merge(&self.nodes[sibling].cf);
            self.nodes.push(Node {
                cf,
                kind: NodeKind::Internal(vec![old_root, sibling]),
            });
            self.root = self.nodes.len() - 1;
        }
    }

    /// Recursive insert; returns the id of a newly split-off sibling when
    /// `node` overflowed.
    fn insert_rec(&mut self, node: usize, p: &Point<D>) -> Option<usize> {
        match &self.nodes[node].kind {
            NodeKind::Leaf(_) => self.insert_leaf(node, p),
            NodeKind::Internal(children) => {
                // Descend into the child whose centroid is closest under
                // the configured metric.
                let metric = self.cfg.metric;
                let child = *children
                    .iter()
                    .min_by(|&&a, &&b| {
                        let da = metric.rank_distance(&self.nodes[a].cf.centroid(), p);
                        let db = metric.rank_distance(&self.nodes[b].cf.centroid(), p);
                        da.partial_cmp(&db).unwrap()
                    })
                    .expect("internal nodes are never empty");
                let split = self.insert_rec(child, p);
                self.nodes[node].cf.add_point(p);
                let sibling = split?;
                if let NodeKind::Internal(children) = &mut self.nodes[node].kind {
                    children.push(sibling);
                    if children.len() > self.cfg.branching {
                        return Some(self.split_internal(node));
                    }
                }
                None
            }
        }
    }

    fn insert_leaf(&mut self, node: usize, p: &Point<D>) -> Option<usize> {
        let threshold = self.cfg.threshold;
        let metric = self.cfg.metric;
        let NodeKind::Leaf(entries) = &mut self.nodes[node].kind else {
            unreachable!()
        };
        // Closest entry by centroid under the configured metric; absorb
        // when the RMS radius stays under T.
        let closest = entries.iter_mut().min_by(|a, b| {
            let da = metric.rank_distance(&a.centroid(), p);
            let db = metric.rank_distance(&b.centroid(), p);
            da.partial_cmp(&db).unwrap()
        });
        match closest {
            Some(entry) if entry.radius_with(p) <= threshold => entry.add_point(p),
            _ => entries.push(Cf::from_point(p)),
        }
        let overflow = entries.len() > self.cfg.leaf_capacity;
        self.nodes[node].cf.add_point(p);
        overflow.then(|| self.split_leaf(node))
    }

    fn split_leaf(&mut self, node: usize) -> usize {
        let NodeKind::Leaf(entries) =
            std::mem::replace(&mut self.nodes[node].kind, NodeKind::Leaf(Vec::new()))
        else {
            unreachable!()
        };
        let (a, b) = split_by_farthest_pair(entries, |cf| cf.centroid(), self.cfg.metric);
        let cf_of = |list: &[Cf<D>]| {
            let mut cf = Cf::zero();
            for e in list {
                cf.merge(e);
            }
            cf
        };
        self.nodes[node].cf = cf_of(&a);
        self.nodes[node].kind = NodeKind::Leaf(a);
        let sibling_cf = cf_of(&b);
        self.nodes.push(Node {
            cf: sibling_cf,
            kind: NodeKind::Leaf(b),
        });
        self.nodes.len() - 1
    }

    fn split_internal(&mut self, node: usize) -> usize {
        let NodeKind::Internal(children) =
            std::mem::replace(&mut self.nodes[node].kind, NodeKind::Leaf(Vec::new()))
        else {
            unreachable!()
        };
        let centroids: Vec<(usize, Point<D>)> = children
            .iter()
            .map(|&c| (c, self.nodes[c].cf.centroid()))
            .collect();
        let (a, b) = split_by_farthest_pair(centroids, |(_, c)| *c, self.cfg.metric);
        let ids = |list: &[(usize, Point<D>)]| list.iter().map(|(id, _)| *id).collect::<Vec<_>>();
        let cf_of = |tree: &CfTree<D>, list: &[usize]| {
            let mut cf = Cf::zero();
            for &c in list {
                cf.merge(&tree.nodes[c].cf);
            }
            cf
        };
        let a_ids = ids(&a);
        let b_ids = ids(&b);
        self.nodes[node].cf = cf_of(self, &a_ids);
        self.nodes[node].kind = NodeKind::Internal(a_ids);
        let sibling_cf = cf_of(self, &b_ids);
        self.nodes.push(Node {
            cf: sibling_cf,
            kind: NodeKind::Internal(b_ids),
        });
        self.nodes.len() - 1
    }

    fn leaf_entries(&self) -> Vec<Cf<D>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id].kind {
                NodeKind::Leaf(entries) => out.extend(entries.iter().copied()),
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
        out
    }
}

/// Splits entries by seeding with the farthest pair of centroids (under
/// `metric`) and assigning the rest to the closer seed.
fn split_by_farthest_pair<T, const D: usize>(
    entries: Vec<T>,
    centroid: impl Fn(&T) -> Point<D>,
    metric: Metric,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(entries.len() >= 2);
    let (mut si, mut sj, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = metric.rank_distance(&centroid(&entries[i]), &centroid(&entries[j]));
            if d > worst {
                worst = d;
                si = i;
                sj = j;
            }
        }
    }
    let ca = centroid(&entries[si]);
    let cb = centroid(&entries[sj]);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (idx, e) in entries.into_iter().enumerate() {
        if idx == si {
            a.push(e);
        } else if idx == sj {
            b.push(e);
        } else if metric.rank_distance(&centroid(&e), &ca)
            <= metric.rank_distance(&centroid(&e), &cb)
        {
            a.push(e);
        } else {
            b.push(e);
        }
    }
    (a, b)
}

/// Runs BIRCH phase 1 (CF-tree construction) over `points`, then assigns
/// each point to the nearest leaf-entry centroid under the configured
/// metric.
pub fn birch<const D: usize>(points: &[Point<D>], cfg: &BirchConfig) -> BirchResult<D> {
    if points.is_empty() {
        return BirchResult {
            clusters: Vec::new(),
            assignment: Vec::new(),
        };
    }
    let metric = cfg.metric;
    let mut tree = CfTree::new(cfg.clone());
    for p in points {
        tree.insert(p);
    }
    let clusters = tree.leaf_entries();
    let centroids: Vec<Point<D>> = clusters.iter().map(Cf::centroid).collect();
    let assignment = points
        .iter()
        .map(|p| {
            let mut best = (0usize, f64::INFINITY);
            for (i, c) in centroids.iter().enumerate() {
                let d = metric.rank_distance(p, c);
                if d < best.1 {
                    best = (i, d);
                }
            }
            best.0
        })
        .collect();
    BirchResult {
        clusters,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blob(center: [f64; 2], n: usize, spread: f64, seed: u64) -> Vec<Point<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new([
                    center[0] + rng.gen_range(-spread..spread),
                    center[1] + rng.gen_range(-spread..spread),
                ])
            })
            .collect()
    }

    #[test]
    fn cf_algebra() {
        let mut cf = Cf::<2>::zero();
        cf.add_point(&Point::new([1.0, 2.0]));
        cf.add_point(&Point::new([3.0, 4.0]));
        assert_eq!(cf.n, 2);
        assert_eq!(cf.ls, [4.0, 6.0]);
        assert_eq!(cf.ss, 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(cf.centroid(), Point::new([2.0, 3.0]));
        // Additivity: merging two single-point CFs equals adding both points.
        let mut m = Cf::from_point(&Point::new([1.0, 2.0]));
        m.merge(&Cf::from_point(&Point::new([3.0, 4.0])));
        assert_eq!(m, cf);
    }

    #[test]
    fn cf_radius_matches_hand_computation() {
        let mut cf = Cf::<2>::zero();
        cf.add_point(&Point::new([-1.0, 0.0]));
        cf.add_point(&Point::new([1.0, 0.0]));
        // centroid (0,0); RMS radius = sqrt((1+1)/2 − 0) = 1.
        assert!((cf.radius() - 1.0).abs() < 1e-12);
        assert_eq!(Cf::from_point(&Point::new([5.0, 5.0])).radius(), 0.0);
    }

    #[test]
    fn tight_blobs_become_few_clusters() {
        let mut points = blob([0.0, 0.0], 100, 0.2, 1);
        points.extend(blob([10.0, 10.0], 100, 0.2, 2));
        let res = birch(&points, &BirchConfig::new(0.5));
        // Two well-separated blobs with threshold » spread: few subclusters,
        // and no subcluster spans both blobs.
        assert!(res.clusters.len() >= 2, "at least one per blob");
        assert!(res.clusters.len() <= 10, "tight blobs must compress");
        let a = res.assignment[0];
        let b = res.assignment[100];
        assert!(res.assignment[..100].iter().all(|&x| {
            res.clusters[x]
                .centroid()
                .dist_l2(&res.clusters[a].centroid())
                < 5.0
        }));
        assert!(
            res.clusters[a]
                .centroid()
                .dist_l2(&res.clusters[b].centroid())
                > 5.0
        );
    }

    #[test]
    fn point_counts_are_preserved() {
        let points = blob([1.0, 1.0], 500, 3.0, 3);
        let res = birch(&points, &BirchConfig::new(0.3));
        let total: u64 = res.clusters.iter().map(|c| c.n).sum();
        assert_eq!(total, 500);
        assert_eq!(res.assignment.len(), 500);
    }

    #[test]
    fn every_cluster_respects_threshold() {
        let points = blob([0.0, 0.0], 300, 2.0, 4);
        let t = 0.4;
        let res = birch(&points, &BirchConfig::new(t));
        for c in &res.clusters {
            assert!(c.radius() <= t + 1e-9, "radius {} > {t}", c.radius());
        }
    }

    #[test]
    fn zero_threshold_keeps_duplicates_together() {
        let mut points = vec![Point::new([1.0, 1.0]); 5];
        points.extend(vec![Point::new([2.0, 2.0]); 5]);
        let res = birch(&points, &BirchConfig::new(0.0).leaf_capacity(4));
        assert_eq!(res.clusters.len(), 2);
        let mut ns: Vec<u64> = res.clusters.iter().map(|c| c.n).collect();
        ns.sort();
        assert_eq!(ns, vec![5, 5]);
    }

    #[test]
    fn empty_input() {
        let res = birch::<2>(&[], &BirchConfig::new(1.0));
        assert!(res.clusters.is_empty());
        assert!(res.assignment.is_empty());
    }

    #[test]
    fn routing_metric_preserves_blob_structure() {
        // The CF-tree must keep two distant blobs in separate subclusters
        // under every routing metric; counts are always preserved.
        let mut points = blob([0.0, 0.0], 80, 0.2, 31);
        points.extend(blob([10.0, 10.0], 80, 0.2, 32));
        for metric in Metric::ALL {
            let res = birch(&points, &BirchConfig::new(0.5).metric(metric));
            let total: u64 = res.clusters.iter().map(|c| c.n).sum();
            assert_eq!(total, 160, "{metric}");
            let a = res.assignment[0];
            let b = res.assignment[80];
            assert!(
                res.clusters[a]
                    .centroid()
                    .dist_l2(&res.clusters[b].centroid())
                    > 5.0,
                "{metric}"
            );
            for c in &res.clusters {
                assert!(c.radius() <= 0.5 + 1e-9, "{metric}");
            }
        }
    }

    #[test]
    fn splits_exercise_internal_nodes() {
        // Many well-separated micro-clusters force leaf and internal splits.
        let mut points = Vec::new();
        for gx in 0..10 {
            for gy in 0..10 {
                points.extend(blob(
                    [gx as f64 * 20.0, gy as f64 * 20.0],
                    5,
                    0.1,
                    (gx * 10 + gy) as u64,
                ));
            }
        }
        let res = birch(
            &points,
            &BirchConfig::new(0.5).branching(4).leaf_capacity(4),
        );
        // CF-tree routing is greedy, so a blob may occasionally be covered
        // by two entries — but the count must stay near 100 and no entry
        // may span two blobs (blob spacing 20 ≫ threshold 0.5).
        assert!(
            (100..=115).contains(&res.clusters.len()),
            "got {} clusters",
            res.clusters.len()
        );
        let total: u64 = res.clusters.iter().map(|c| c.n).sum();
        assert_eq!(total, 500);
        for c in &res.clusters {
            assert!(c.radius() <= 0.5 + 1e-9);
        }
    }
}
