#![warn(missing_docs)]

//! Clustering baselines used by the paper's evaluation (Section 8.6).
//!
//! The SGB operators are compared against three standalone clustering
//! algorithms — the traditional way to group multi-dimensional data outside
//! the DBMS:
//!
//! * [`kmeans()`](kmeans()) — Lloyd's algorithm with k-means++ seeding [Kanungo et al.],
//!   run with `K = 20` and `K = 40` in Figure 11;
//! * [`dbscan()`](dbscan()) — density-based clustering [Ester et al.] with R-tree
//!   region queries (the "state-of-the-art implementation of DBSCAN with an
//!   R-tree" the paper cites);
//! * [`birch()`](birch()) — CF-tree based hierarchical clustering [Zhang et al.].
//!
//! These implementations are honest single-node baselines: they scan the
//! data the way their original papers describe (K-means and BIRCH make
//! multiple passes / maintain trees; DBSCAN performs one region query per
//! point), which is exactly the behaviour the paper's Figure 11 contrasts
//! with the single-pass SGB operators.
//!
//! The [`bridge`] module connects the two worlds: [`kmeans_around`] derives
//! centroids with k-means and regroups relationally with the SGB-Around
//! operator (optionally radius-bounded).

pub mod birch;
pub mod bridge;
pub mod dbscan;
pub mod kmeans;

pub use birch::{birch, BirchConfig, BirchResult};
pub use bridge::{around_seeds, kmeans_around, KMeansAround};
pub use dbscan::{dbscan, DbscanConfig, DbscanResult, Label};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
