//! DBSCAN density-based clustering with R-tree region queries.

use sgb_geom::{Metric, Point};
use sgb_spatial::RTree;

/// Configuration for [`dbscan`].
#[derive(Clone, Debug, PartialEq)]
pub struct DbscanConfig {
    /// Neighbourhood radius (the paper sets it to the SGB ε, 0.2, in
    /// Figure 11).
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
    /// Distance function for the neighbourhood.
    pub metric: Metric,
}

impl DbscanConfig {
    /// A configuration with the classic `min_pts = 4` default and `L2`.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "epsilon must be finite and non-negative"
        );
        Self {
            eps,
            min_pts: 4,
            metric: Metric::L2,
        }
    }

    /// Sets `min_pts`.
    pub fn min_pts(mut self, min_pts: usize) -> Self {
        self.min_pts = min_pts;
        self
    }

    /// Sets the metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }
}

/// Per-point label assigned by [`dbscan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the cluster with this id (0-based).
    Cluster(usize),
}

/// Output of [`dbscan`].
#[derive(Clone, Debug)]
pub struct DbscanResult {
    /// Label per input point.
    pub labels: Vec<Label>,
    /// Number of clusters discovered.
    pub clusters: usize,
}

/// Runs DBSCAN over `points`.
///
/// Classic label-propagation formulation: for each unvisited core point,
/// expand its density-reachable set via a work queue. Region queries run
/// against an R-tree built over all points up front (one `O(log n)` window
/// query per expansion step), matching the R-tree-accelerated
/// implementation the paper benchmarks against.
pub fn dbscan<const D: usize>(points: &[Point<D>], cfg: &DbscanConfig) -> DbscanResult {
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;

    // The point set is complete up front, so the index is STR bulk-loaded
    // instead of paying insert-at-a-time construction.
    let index: RTree<D, usize> = RTree::from_points(
        sgb_spatial::rtree::DEFAULT_MAX_ENTRIES,
        points.iter().enumerate().map(|(i, p)| (*p, i)),
    );

    let region_query = |i: usize, buf: &mut Vec<usize>| {
        buf.clear();
        // Metric-aware range query: the R-tree prunes with the
        // neighbourhood's own norm (diamond for L1, square for L∞) rather
        // than the enclosing window; hits are verified with the canonical
        // predicate.
        index.query_within(&points[i], cfg.eps, cfg.metric, |_, &j| {
            if cfg.metric.within(&points[i], &points[j], cfg.eps) {
                buf.push(j);
            }
        });
    };

    let mut labels = vec![UNVISITED; points.len()];
    let mut clusters = 0usize;
    let mut neighbours: Vec<usize> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();

    for i in 0..points.len() {
        if labels[i] != UNVISITED {
            continue;
        }
        region_query(i, &mut neighbours);
        if neighbours.len() < cfg.min_pts {
            labels[i] = NOISE;
            continue;
        }
        // i is a core point: start a new cluster and expand.
        let cluster = clusters;
        clusters += 1;
        labels[i] = cluster;
        frontier.clear();
        frontier.extend(neighbours.iter().copied());
        while let Some(j) = frontier.pop() {
            if labels[j] == NOISE {
                // Border point previously marked noise: claim it.
                labels[j] = cluster;
                continue;
            }
            if labels[j] != UNVISITED {
                continue;
            }
            labels[j] = cluster;
            region_query(j, &mut neighbours);
            if neighbours.len() >= cfg.min_pts {
                frontier.extend(neighbours.iter().copied());
            }
        }
    }

    DbscanResult {
        labels: labels
            .into_iter()
            .map(|l| {
                if l >= NOISE {
                    Label::Noise
                } else {
                    Label::Cluster(l)
                }
            })
            .collect(),
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blob(center: [f64; 2], n: usize, spread: f64, seed: u64) -> Vec<Point<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new([
                    center[0] + rng.gen_range(-spread..spread),
                    center[1] + rng.gen_range(-spread..spread),
                ])
            })
            .collect()
    }

    #[test]
    fn two_dense_blobs_and_noise() {
        let mut points = blob([0.0, 0.0], 60, 0.4, 1);
        points.extend(blob([10.0, 10.0], 60, 0.4, 2));
        points.push(Point::new([5.0, 5.0])); // isolated noise
        let res = dbscan(&points, &DbscanConfig::new(0.5).min_pts(4));
        assert_eq!(res.clusters, 2);
        assert_eq!(res.labels[120], Label::Noise);
        let l0 = res.labels[0];
        assert!(matches!(l0, Label::Cluster(_)));
        assert!(res.labels[..60].iter().all(|&l| l == l0));
        let l1 = res.labels[60];
        assert!(res.labels[60..120].iter().all(|&l| l == l1));
        assert_ne!(l0, l1);
    }

    #[test]
    fn all_noise_when_sparse() {
        let points: Vec<Point<2>> = (0..10)
            .map(|i| Point::new([i as f64 * 100.0, 0.0]))
            .collect();
        let res = dbscan(&points, &DbscanConfig::new(1.0));
        assert_eq!(res.clusters, 0);
        assert!(res.labels.iter().all(|&l| l == Label::Noise));
    }

    #[test]
    fn chain_is_one_cluster_with_min_pts_2() {
        // A chain where consecutive points are within ε: density-connected
        // end to end when every point is core (min_pts = 2 incl. self).
        let points: Vec<Point<2>> = (0..20).map(|i| Point::new([i as f64 * 0.5, 0.0])).collect();
        let res = dbscan(&points, &DbscanConfig::new(0.6).min_pts(2));
        assert_eq!(res.clusters, 1);
        assert!(res.labels.iter().all(|&l| l == Label::Cluster(0)));
    }

    #[test]
    fn border_points_join_a_cluster() {
        // Dense core plus one point only reachable from the core.
        let mut points = blob([0.0, 0.0], 30, 0.3, 7);
        points.push(Point::new([0.65, 0.0])); // within ε of core points only
        let res = dbscan(&points, &DbscanConfig::new(0.5).min_pts(5));
        assert_eq!(res.clusters, 1);
        assert!(matches!(res.labels[30], Label::Cluster(0)));
    }

    #[test]
    fn empty_input() {
        let res = dbscan::<2>(&[], &DbscanConfig::new(1.0));
        assert_eq!(res.clusters, 0);
        assert!(res.labels.is_empty());
    }

    #[test]
    fn linf_metric_neighbourhoods() {
        // Points at L∞ distance 1 but L2 distance √2.
        let points = vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 1.0]),
            Point::new([2.0, 2.0]),
        ];
        let linf = dbscan(
            &points,
            &DbscanConfig::new(1.0).min_pts(2).metric(Metric::LInf),
        );
        assert_eq!(linf.clusters, 1);
        let l2 = dbscan(
            &points,
            &DbscanConfig::new(1.0).min_pts(2).metric(Metric::L2),
        );
        assert_eq!(l2.clusters, 0);
    }

    #[test]
    fn l1_metric_neighbourhoods() {
        // Diagonal steps of (0.6, 0.6): L∞ gap 0.6, L2 gap ≈ 0.85, L1 gap
        // 1.2 — with ε = 1 the chain is connected under L∞/L2 but falls
        // apart under L1.
        let points: Vec<Point<2>> = (0..6)
            .map(|i| Point::new([i as f64 * 0.6, i as f64 * 0.6]))
            .collect();
        for (metric, clusters) in [(Metric::LInf, 1), (Metric::L2, 1), (Metric::L1, 0)] {
            let res = dbscan(&points, &DbscanConfig::new(1.0).min_pts(2).metric(metric));
            assert_eq!(res.clusters, clusters, "{metric}");
        }
    }

    #[test]
    fn deterministic_labels() {
        let points = blob([3.0, 3.0], 100, 1.0, 11);
        let a = dbscan(&points, &DbscanConfig::new(0.3));
        let b = dbscan(&points, &DbscanConfig::new(0.3));
        assert_eq!(a.labels, b.labels);
    }
}
