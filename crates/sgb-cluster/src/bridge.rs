//! Bridge from the clustering baselines to the SGB-Around operator.
//!
//! The paper's experimental section contrasts standalone clustering with
//! in-engine similarity grouping; this module implements the hybrid
//! "derive centers, then regroup relationally" scenario: run k-means over a
//! sample (or the full relation), then feed the learned centroids into
//! SGB-Around as center seeds — optionally with a radius bound, which
//! k-means itself cannot express — so the final grouping runs as a single
//! order-independent pass inside the engine.

use sgb_core::query::Grouping;
use sgb_core::SgbQuery;
use sgb_geom::Point;

use crate::kmeans::{kmeans, KMeansConfig, KMeansResult};

/// Output of [`kmeans_around`]: the k-means model plus the SGB-Around
/// regrouping seeded with its centroids.
#[derive(Clone, Debug)]
pub struct KMeansAround<const D: usize> {
    /// The k-means run that derived the centers.
    pub kmeans: KMeansResult<D>,
    /// The SGB-Around grouping around those centroids, in the unified
    /// family-wide result shape (non-empty centroid groups in centroid
    /// order, radius-expelled records in the explicit outlier set).
    pub around: Grouping,
    /// The centroid index behind each answer group: `around.groups()[g]`
    /// collects the records whose nearest centroid is
    /// `kmeans.centroids[centroid_of_group[g]]`. The unified [`Grouping`]
    /// drops centroids that attracted nothing, so group indices and
    /// centroid indices diverge whenever a centroid group is empty (a
    /// radius bound, duplicate/degenerate centroids) — this vector keeps
    /// the correspondence explicit.
    pub centroid_of_group: Vec<usize>,
}

impl<const D: usize> KMeansAround<D> {
    /// Maps each record id in `0..n` to the index of its **centroid**
    /// (`None` for outliers) — the k-means-comparable view of
    /// [`Grouping::assignment`], immune to empty-centroid compaction.
    #[must_use]
    pub fn centroid_assignment(&self, n: usize) -> Vec<Option<usize>> {
        self.around
            .assignment(n)
            .into_iter()
            .map(|g| g.map(|g| self.centroid_of_group[g]))
            .collect()
    }
}

/// Builds an [`SgbQuery`] seeded with a k-means result's centroids,
/// carrying the clustering metric over to the relational operator.
///
/// Panics (like [`SgbQuery::around`]) when the result has no centroids
/// — i.e. k-means ran on empty input; use [`kmeans_around`] for a total
/// wrapper.
#[must_use]
pub fn around_seeds<const D: usize>(
    result: &KMeansResult<D>,
    metric_cfg: &KMeansConfig,
    max_radius: Option<f64>,
) -> SgbQuery<D> {
    let mut query = SgbQuery::around(result.centroids.clone()).metric(metric_cfg.metric);
    if let Some(r) = max_radius {
        query = query.max_radius(r);
    }
    query
}

/// Runs k-means over `points`, then regroups the same points with
/// SGB-Around seeded by the learned centroids.
///
/// Without a radius bound the regrouping reproduces the k-means assignment
/// exactly (both assign to the nearest centroid with lowest-index
/// tie-breaking); with one, points farther than `max_radius` from every
/// centroid move to the outlier group — the robust variant k-means cannot
/// express.
///
/// ```
/// use sgb_cluster::{kmeans_around, KMeansConfig};
/// use sgb_geom::Point;
///
/// let points = vec![
///     Point::new([0.0, 0.1]),
///     Point::new([0.1, 0.0]),
///     Point::new([10.0, 10.1]),
///     Point::new([10.1, 10.0]),
///     Point::new([5.0, 5.0]), // straggler between the clusters
/// ];
/// let out = kmeans_around(&points, &KMeansConfig::new(2).seed(1), Some(3.0));
/// // k-means absorbs the straggler (dragging one centroid to ≈(1.7, 1.7));
/// // the radius-bounded regroup expels it from that group again.
/// assert_eq!(out.around.outliers(), &[4]);
/// assert_eq!(out.around.grouped_records(), 4);
/// ```
pub fn kmeans_around<const D: usize>(
    points: &[Point<D>],
    cfg: &KMeansConfig,
    max_radius: Option<f64>,
) -> KMeansAround<D> {
    let km = kmeans(points, cfg);
    let around = if km.centroids.is_empty() {
        Grouping::empty()
    } else {
        around_seeds(&km, cfg, max_radius).run(points)
    };
    // Recover which centroid each answer group belongs to: every member
    // of a center group shares the same nearest centroid (the operator's
    // assignment rule), so one member pins the group. Re-evaluating the
    // rule on that member — canonical distances, lowest-index ties — is
    // exactly what the operator computed.
    let centroid_of_group = around
        .iter()
        .map(|g| {
            let p = &points[g[0]];
            let mut best = (f64::INFINITY, 0);
            for (c, q) in km.centroids.iter().enumerate() {
                let d = cfg.metric.distance(p, q);
                if d < best.0 {
                    best = (d, c);
                }
            }
            best.1
        })
        .collect();
    KMeansAround {
        kmeans: km,
        around,
        centroid_of_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgb_geom::Metric;

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blob<const D: usize>(center: [f64; D], n: usize, spread: f64, seed: u64) -> Vec<Point<D>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = center;
                for v in c.iter_mut() {
                    *v += rng.gen_range(-spread..spread);
                }
                Point::new(c)
            })
            .collect()
    }

    #[test]
    fn unbounded_regroup_reproduces_kmeans_assignment() {
        let mut points = blob([0.0, 0.0], 60, 0.8, 1);
        points.extend(blob([7.0, 7.0], 60, 0.8, 2));
        points.extend(blob([0.0, 7.0], 60, 0.8, 3));
        for metric in Metric::ALL {
            let cfg = KMeansConfig::new(3).metric(metric).seed(9);
            let out = kmeans_around(&points, &cfg, None);
            // The centroid-indexed view is immune to empty-group
            // compaction, so the contract holds even if a centroid were
            // starved (here all three attract members).
            assert_eq!(out.around.num_groups(), 3, "{metric}");
            assert_eq!(out.centroid_of_group, vec![0, 1, 2], "{metric}");
            let assignment = out.centroid_assignment(points.len());
            for (i, a) in assignment.iter().enumerate() {
                assert_eq!(
                    *a,
                    Some(out.kmeans.assignment[i]),
                    "{metric}: record {i} regrouped differently"
                );
            }
            assert!(out.around.outliers().is_empty());
        }
    }

    #[test]
    fn radius_bound_expels_stragglers() {
        let mut points = blob([0.0, 0.0], 40, 0.3, 4);
        points.extend(blob([6.0, 6.0], 40, 0.3, 5));
        points.push(Point::new([3.0, 3.0])); // between the blobs
        let cfg = KMeansConfig::new(2).seed(11);
        let out = kmeans_around(&points, &cfg, Some(1.5));
        assert_eq!(out.around.outliers(), &[80]);
        out.around.check_partition(points.len());
        // The group -> centroid map stays in center order and agrees with
        // the k-means view of every surviving record.
        assert!(out.centroid_of_group.windows(2).all(|w| w[0] < w[1]));
        let by_centroid = out.centroid_assignment(points.len());
        for (i, c) in by_centroid.iter().enumerate() {
            if let Some(c) = c {
                assert_eq!(*c, out.kmeans.assignment[i], "record {i}");
            }
        }
        // Without the bound the straggler joins a centroid group.
        let free = kmeans_around(&points, &cfg, None);
        assert!(free.around.outliers().is_empty());
    }

    #[test]
    fn seeds_carry_the_metric_and_radius() {
        let points = blob([1.0, 1.0], 30, 0.5, 6);
        let cfg = KMeansConfig::new(2).metric(Metric::L1).seed(3);
        let km = kmeans(&points, &cfg);
        let seeds = around_seeds(&km, &cfg, Some(0.75));
        assert_eq!(seeds.operator(), "SGB-Around");
        assert_eq!(seeds.configured_metric(), Metric::L1);
        assert_eq!(seeds.radius_bound(), Some(0.75));
        assert_eq!(seeds.centers().unwrap(), km.centroids.as_slice());
    }

    #[test]
    fn empty_input_is_total() {
        let out = kmeans_around::<2>(&[], &KMeansConfig::new(3), Some(1.0));
        assert!(out.kmeans.centroids.is_empty());
        assert_eq!(out.around, Grouping::empty());
        assert!(out.centroid_of_group.is_empty());
    }
}
