//! Bridge from the clustering baselines to the SGB-Around operator.
//!
//! The paper's experimental section contrasts standalone clustering with
//! in-engine similarity grouping; this module implements the hybrid
//! "derive centers, then regroup relationally" scenario: run k-means over a
//! sample (or the full relation), then feed the learned centroids into
//! SGB-Around as center seeds — optionally with a radius bound, which
//! k-means itself cannot express — so the final grouping runs as a single
//! order-independent pass inside the engine.

use sgb_core::{sgb_around, AroundGrouping, SgbAroundConfig};
use sgb_geom::Point;

use crate::kmeans::{kmeans, KMeansConfig, KMeansResult};

/// Output of [`kmeans_around`]: the k-means model plus the SGB-Around
/// regrouping seeded with its centroids.
#[derive(Clone, Debug)]
pub struct KMeansAround<const D: usize> {
    /// The k-means run that derived the centers.
    pub kmeans: KMeansResult<D>,
    /// The SGB-Around grouping around those centroids (group `c`
    /// corresponds to centroid `c`).
    pub around: AroundGrouping,
}

/// Builds an [`SgbAroundConfig`] seeded with a k-means result's centroids,
/// carrying the clustering metric over to the relational operator.
///
/// Panics (like [`SgbAroundConfig::new`]) when the result has no centroids
/// — i.e. k-means ran on empty input; use [`kmeans_around`] for a total
/// wrapper.
pub fn around_seeds<const D: usize>(
    result: &KMeansResult<D>,
    metric_cfg: &KMeansConfig,
    max_radius: Option<f64>,
) -> SgbAroundConfig<D> {
    let mut cfg = SgbAroundConfig::new(result.centroids.clone()).metric(metric_cfg.metric);
    if let Some(r) = max_radius {
        cfg = cfg.max_radius(r);
    }
    cfg
}

/// Runs k-means over `points`, then regroups the same points with
/// SGB-Around seeded by the learned centroids.
///
/// Without a radius bound the regrouping reproduces the k-means assignment
/// exactly (both assign to the nearest centroid with lowest-index
/// tie-breaking); with one, points farther than `max_radius` from every
/// centroid move to the outlier group — the robust variant k-means cannot
/// express.
///
/// ```
/// use sgb_cluster::{kmeans_around, KMeansConfig};
/// use sgb_geom::Point;
///
/// let points = vec![
///     Point::new([0.0, 0.1]),
///     Point::new([0.1, 0.0]),
///     Point::new([10.0, 10.1]),
///     Point::new([10.1, 10.0]),
///     Point::new([5.0, 5.0]), // straggler between the clusters
/// ];
/// let out = kmeans_around(&points, &KMeansConfig::new(2).seed(1), Some(3.0));
/// // k-means absorbs the straggler (dragging one centroid to ≈(1.7, 1.7));
/// // the radius-bounded regroup expels it from that group again.
/// assert_eq!(out.around.outliers, vec![4]);
/// assert_eq!(out.around.assigned_records(), 4);
/// ```
pub fn kmeans_around<const D: usize>(
    points: &[Point<D>],
    cfg: &KMeansConfig,
    max_radius: Option<f64>,
) -> KMeansAround<D> {
    let km = kmeans(points, cfg);
    let around = if km.centroids.is_empty() {
        AroundGrouping::default()
    } else {
        sgb_around(points, &around_seeds(&km, cfg, max_radius))
    };
    KMeansAround { kmeans: km, around }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgb_geom::Metric;

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blob<const D: usize>(center: [f64; D], n: usize, spread: f64, seed: u64) -> Vec<Point<D>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = center;
                for v in c.iter_mut() {
                    *v += rng.gen_range(-spread..spread);
                }
                Point::new(c)
            })
            .collect()
    }

    #[test]
    fn unbounded_regroup_reproduces_kmeans_assignment() {
        let mut points = blob([0.0, 0.0], 60, 0.8, 1);
        points.extend(blob([7.0, 7.0], 60, 0.8, 2));
        points.extend(blob([0.0, 7.0], 60, 0.8, 3));
        for metric in Metric::ALL {
            let cfg = KMeansConfig::new(3).metric(metric).seed(9);
            let out = kmeans_around(&points, &cfg, None);
            let assignment = out.around.assignment(points.len());
            for (i, a) in assignment.iter().enumerate() {
                assert_eq!(
                    *a,
                    Some(out.kmeans.assignment[i]),
                    "{metric}: record {i} regrouped differently"
                );
            }
            assert!(out.around.outliers.is_empty());
        }
    }

    #[test]
    fn radius_bound_expels_stragglers() {
        let mut points = blob([0.0, 0.0], 40, 0.3, 4);
        points.extend(blob([6.0, 6.0], 40, 0.3, 5));
        points.push(Point::new([3.0, 3.0])); // between the blobs
        let cfg = KMeansConfig::new(2).seed(11);
        let out = kmeans_around(&points, &cfg, Some(1.5));
        assert_eq!(out.around.outliers, vec![80]);
        out.around.check_partition(points.len());
        // Without the bound the straggler joins a centroid group.
        let free = kmeans_around(&points, &cfg, None);
        assert!(free.around.outliers.is_empty());
    }

    #[test]
    fn seeds_carry_the_metric_and_radius() {
        let points = blob([1.0, 1.0], 30, 0.5, 6);
        let cfg = KMeansConfig::new(2).metric(Metric::L1).seed(3);
        let km = kmeans(&points, &cfg);
        let seeds = around_seeds(&km, &cfg, Some(0.75));
        assert_eq!(seeds.metric, Metric::L1);
        assert_eq!(seeds.max_radius, Some(0.75));
        assert_eq!(seeds.centers, km.centroids);
    }

    #[test]
    fn empty_input_is_total() {
        let out = kmeans_around::<2>(&[], &KMeansConfig::new(3), Some(1.0));
        assert!(out.kmeans.centroids.is_empty());
        assert_eq!(out.around, AroundGrouping::default());
    }
}
