//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! The assignment step (and the k-means++ seeding weights) can run under
//! any [`Metric`], so the cross-algorithm comparisons cover the same norms
//! as the SGB operators; the update step always takes the coordinate-wise
//! mean (the generalised-Lloyd heuristic — exact for `L2`, a standard
//! approximation for `L1`/`L∞`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgb_geom::{Metric, Point};

/// Configuration for [`kmeans`].
#[derive(Clone, Debug, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `K` (the paper uses 20 and 40 in Figure 11).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold: stop when no centroid moves farther than
    /// this (squared Euclidean).
    pub tol: f64,
    /// Seed for the k-means++ initialisation.
    pub seed: u64,
    /// Distance function for the assignment step and the seeding weights.
    pub metric: Metric,
}

impl KMeansConfig {
    /// A configuration with conventional defaults
    /// (`max_iters = 100`, `tol = 1e-6`, `L2`).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        Self {
            k,
            max_iters: 100,
            tol: 1e-6,
            seed: 0x5EED,
            metric: Metric::L2,
        }
    }

    /// Sets the assignment metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Sets the convergence threshold.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the seeding RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Output of [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansResult<const D: usize> {
    /// Final cluster centroids (at most `K`; fewer when `n < K`).
    pub centroids: Vec<Point<D>>,
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Sum of squared distances (under the configured metric) of points to
    /// their centroid.
    pub inertia: f64,
}

/// Squared metric distance — the k-means objective term and the k-means++
/// weight. Computed without a square root for `L2`, so the default path is
/// bit-identical to the classic implementation.
#[inline]
fn dist2<const D: usize>(metric: Metric, a: &Point<D>, b: &Point<D>) -> f64 {
    match metric {
        Metric::L2 => a.dist_sq(b),
        m => {
            let d = m.distance(a, b);
            d * d
        }
    }
}

/// Runs k-means++ seeded Lloyd's algorithm over `points`.
///
/// Deterministic for a fixed seed. Returns an empty result for empty input.
pub fn kmeans<const D: usize>(points: &[Point<D>], cfg: &KMeansConfig) -> KMeansResult<D> {
    if points.is_empty() {
        return KMeansResult {
            centroids: Vec::new(),
            assignment: Vec::new(),
            iterations: 0,
            inertia: 0.0,
        };
    }
    let k = cfg.k.min(points.len());
    let metric = cfg.metric;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut centroids = plus_plus_seeds(points, k, metric, &mut rng);
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            assignment[i] = nearest_centroid(p, &centroids, metric).0;
        }
        // Update step.
        let mut sums = vec![[0.0f64; D]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for (d, s) in sums[c].iter_mut().enumerate() {
                *s += p.coord(d);
            }
        }
        let mut max_shift = 0.0f64;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed it at the point farthest from its
                // centroid assignment (classic fix keeping K clusters).
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = dist2(metric, a, &centroids[assignment[0]]);
                        let db = dist2(metric, b, &centroids[assignment[0]]);
                        da.partial_cmp(&db).unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[c] = points[far];
                max_shift = f64::INFINITY;
                continue;
            }
            let mut fresh = [0.0f64; D];
            for d in 0..D {
                fresh[d] = sums[c][d] / counts[c] as f64;
            }
            let fresh = Point::new(fresh);
            max_shift = max_shift.max(centroids[c].dist_sq(&fresh));
            centroids[c] = fresh;
        }
        if max_shift <= cfg.tol {
            break;
        }
    }

    // Final assignment + inertia against the converged centroids.
    let mut inertia = 0.0;
    for (i, p) in points.iter().enumerate() {
        let (c, d2) = nearest_centroid(p, &centroids, metric);
        assignment[i] = c;
        inertia += d2;
    }
    KMeansResult {
        centroids,
        assignment,
        iterations,
        inertia,
    }
}

/// The index and squared metric distance of the centroid nearest to `p`.
fn nearest_centroid<const D: usize>(
    p: &Point<D>,
    centroids: &[Point<D>],
    metric: Metric,
) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, q) in centroids.iter().enumerate() {
        let d2 = dist2(metric, p, q);
        if d2 < best.1 {
            best = (c, d2);
        }
    }
    best
}

/// k-means++ seeding: first seed uniform, each next seed drawn with
/// probability proportional to squared metric distance from the nearest
/// chosen seed.
fn plus_plus_seeds<const D: usize>(
    points: &[Point<D>],
    k: usize,
    metric: Metric,
    rng: &mut SmallRng,
) -> Vec<Point<D>> {
    let mut seeds = Vec::with_capacity(k);
    seeds.push(points[rng.gen_range(0..points.len())]);
    let mut weights: Vec<f64> = points.iter().map(|p| dist2(metric, p, &seeds[0])).collect();
    while seeds.len() < k {
        let total: f64 = weights.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing seeds: any choice works.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in weights.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let seed = points[next];
        seeds.push(seed);
        for (i, p) in points.iter().enumerate() {
            weights[i] = weights[i].min(dist2(metric, p, &seed));
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob<const D: usize>(center: [f64; D], n: usize, spread: f64, seed: u64) -> Vec<Point<D>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = center;
                for v in c.iter_mut() {
                    *v += rng.gen_range(-spread..spread);
                }
                Point::new(c)
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut points = blob([0.0, 0.0], 50, 0.5, 1);
        points.extend(blob([10.0, 10.0], 50, 0.5, 2));
        let res = kmeans(&points, &KMeansConfig::new(2));
        assert_eq!(res.centroids.len(), 2);
        // All points of one blob share a label, and the labels differ.
        let first = res.assignment[0];
        assert!(res.assignment[..50].iter().all(|&a| a == first));
        let second = res.assignment[50];
        assert!(res.assignment[50..].iter().all(|&a| a == second));
        assert_ne!(first, second);
        // Centroids near the blob centres.
        for c in &res.centroids {
            let near_origin = c.dist_l2(&Point::new([0.0, 0.0])) < 1.0;
            let near_ten = c.dist_l2(&Point::new([10.0, 10.0])) < 1.0;
            assert!(near_origin || near_ten, "stray centroid {c:?}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let points = blob([1.0, 2.0], 80, 2.0, 3);
        let a = kmeans(&points, &KMeansConfig::new(5).seed(11));
        let b = kmeans(&points, &KMeansConfig::new(5).seed(11));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let points = blob([0.0, 0.0], 3, 1.0, 4);
        let res = kmeans(&points, &KMeansConfig::new(10));
        assert_eq!(res.centroids.len(), 3);
        assert!(res.assignment.iter().all(|&a| a < 3));
    }

    #[test]
    fn empty_input() {
        let res = kmeans::<2>(&[], &KMeansConfig::new(3));
        assert!(res.centroids.is_empty());
        assert!(res.assignment.is_empty());
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let points = vec![
            Point::new([0.0, 0.0]),
            Point::new([2.0, 0.0]),
            Point::new([0.0, 2.0]),
            Point::new([2.0, 2.0]),
        ];
        let res = kmeans(&points, &KMeansConfig::new(1));
        assert_eq!(res.centroids[0], Point::new([1.0, 1.0]));
        assert!((res.inertia - 8.0).abs() < 1e-9);
    }

    #[test]
    fn iterations_bounded_by_cap() {
        let points = blob([0.0, 0.0], 200, 5.0, 9);
        let res = kmeans(&points, &KMeansConfig::new(8).max_iters(3));
        assert!(res.iterations <= 3);
    }

    #[test]
    fn duplicate_points_do_not_crash_seeding() {
        let points = vec![Point::new([1.0, 1.0]); 20];
        let res = kmeans(&points, &KMeansConfig::new(4));
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn non_euclidean_assignment_metrics() {
        // Two separated blobs cluster correctly under every norm, and the
        // per-metric inertias are finite and ordered L∞ ≤ L2 ≤ L1 (the
        // norms themselves are, pointwise).
        let mut points = blob([0.0, 0.0], 40, 0.4, 21);
        points.extend(blob([8.0, 8.0], 40, 0.4, 22));
        let mut inertias = Vec::new();
        for metric in Metric::ALL {
            let res = kmeans(&points, &KMeansConfig::new(2).metric(metric).seed(5));
            let first = res.assignment[0];
            assert!(res.assignment[..40].iter().all(|&a| a == first), "{metric}");
            assert_ne!(first, res.assignment[40], "{metric}");
            inertias.push((metric, res.inertia));
        }
        let get = |m: Metric| inertias.iter().find(|(x, _)| *x == m).unwrap().1;
        assert!(get(Metric::LInf) <= get(Metric::L2) + 1e-9);
        assert!(get(Metric::L2) <= get(Metric::L1) + 1e-9);
    }

    #[test]
    fn three_dimensional() {
        let mut points = blob([0.0, 0.0, 0.0], 30, 0.3, 5);
        points.extend(blob([5.0, 5.0, 5.0], 30, 0.3, 6));
        let res = kmeans(&points, &KMeansConfig::new(2));
        assert_ne!(res.assignment[0], res.assignment[59]);
    }
}
