//! Property-based tests of the ε-grid execution engine and the cost-based
//! `Auto` selection: every grid path must produce groupings bit-identical
//! to the established reference algorithms under all metrics and overlap
//! semantics, must be row-permutation invariant exactly where the
//! reference paths are, and `Auto` must always agree with every concrete
//! algorithm (cost-based selection may only ever change speed, never
//! results — the order-independent-semantics bar of arXiv:1412.4303).

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::{
    sgb_all, sgb_any, sgb_around, AllAlgorithm, AnyAlgorithm, AroundAlgorithm, OverlapAction,
    SgbAllConfig, SgbAny, SgbAnyConfig, SgbAroundConfig,
};
use sgb::geom::{Metric, Point};

fn arb_point() -> impl Strategy<Value = Point<2>> {
    (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Point::new([x, y]))
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![Just(Metric::L1), Just(Metric::L2), Just(Metric::LInf)]
}

fn arb_overlap() -> impl Strategy<Value = OverlapAction> {
    prop_oneof![
        Just(OverlapAction::JoinAny),
        Just(OverlapAction::Eliminate),
        Just(OverlapAction::FormNewGroup),
    ]
}

/// A deterministic permutation of `0..n` derived from `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) as usize) % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SGB-All: the grid engine and `Auto` are bit-identical to the
    /// All-Pairs reference — same groups in the same order with the same
    /// members, same eliminated set — for every metric and overlap
    /// semantics (same seed ⇒ same JOIN-ANY arbitration).
    #[test]
    fn all_grid_and_auto_are_bit_identical_to_reference(
        points in vec(arb_point(), 0..150),
        eps in 0.05f64..2.0,
        metric in arb_metric(),
        overlap in arb_overlap(),
        seed in any::<u64>(),
    ) {
        let cfg = |algo: AllAlgorithm| {
            SgbAllConfig::new(eps)
                .metric(metric)
                .overlap(overlap)
                .algorithm(algo)
                .seed(seed)
        };
        let reference = sgb_all(&points, &cfg(AllAlgorithm::AllPairs));
        reference.check_partition(points.len());
        for algo in [AllAlgorithm::Grid, AllAlgorithm::Auto] {
            let got = sgb_all(&points, &cfg(algo));
            prop_assert_eq!(&reference, &got, "{:?} {} {:?}", algo, metric, overlap);
        }
    }

    /// SGB-Any: the grid engine (streaming and bulk) and `Auto` produce
    /// exactly the connected components of the All-Pairs reference.
    #[test]
    fn any_grid_and_auto_match_reference_components(
        points in vec(arb_point(), 0..200),
        eps in 0.0f64..2.0,
        metric in arb_metric(),
    ) {
        let cfg = |algo: AnyAlgorithm| SgbAnyConfig::new(eps).metric(metric).algorithm(algo);
        let reference = sgb_any(&points, &cfg(AnyAlgorithm::AllPairs));
        reference.check_partition(points.len());
        for algo in [AnyAlgorithm::Indexed, AnyAlgorithm::Grid, AnyAlgorithm::Auto] {
            // Bulk (one-shot) path.
            let bulk = sgb_any(&points, &cfg(algo));
            prop_assert_eq!(&reference, &bulk, "bulk {:?} {}", algo, metric);
            // Streaming path (incremental index maintenance).
            let mut op = SgbAny::new(cfg(algo));
            for p in &points {
                op.push(*p);
            }
            prop_assert_eq!(&reference, &op.finish(), "streaming {:?} {}", algo, metric);
        }
    }

    /// SGB-Any grid path is row-permutation invariant as a set of sets,
    /// exactly like the reference semantics demand.
    #[test]
    fn any_grid_is_row_permutation_invariant(
        points in vec(arb_point(), 1..120),
        eps in 0.0f64..2.0,
        metric in arb_metric(),
        perm_seed in any::<u64>(),
    ) {
        let cfg = SgbAnyConfig::new(eps)
            .metric(metric)
            .algorithm(AnyAlgorithm::Grid);
        let forward = sgb_any(&points, &cfg);
        let perm = permutation(points.len(), perm_seed);
        let shuffled: Vec<Point<2>> = perm.iter().map(|&i| points[i]).collect();
        let backward = sgb_any(&shuffled, &cfg);
        // Map shuffled ids back to original ids before comparing.
        let remapped = sgb::core::Grouping {
            groups: backward
                .groups
                .iter()
                .map(|g| g.iter().map(|&i| perm[i]).collect())
                .collect(),
            eliminated: vec![],
        };
        prop_assert_eq!(remapped.normalized(), forward.normalized());
    }

    /// SGB-Around: the center grid and `Auto` reproduce the brute-force
    /// assignment record for record — including radius-bounded outliers
    /// and lowest-index tie-breaking — and stay order-independent.
    #[test]
    fn around_grid_and_auto_match_reference_assignment(
        points in vec(arb_point(), 0..120),
        centers in vec(arb_point(), 1..24),
        metric in arb_metric(),
        radius in prop_oneof![Just(None), (0.0f64..4.0).prop_map(Some)],
        perm_seed in any::<u64>(),
    ) {
        let cfg = |algo: AroundAlgorithm| {
            let mut cfg = SgbAroundConfig::new(centers.clone())
                .metric(metric)
                .algorithm(algo);
            if let Some(r) = radius {
                cfg = cfg.max_radius(r);
            }
            cfg
        };
        let reference = sgb_around(&points, &cfg(AroundAlgorithm::BruteForce));
        reference.check_partition(points.len());
        for algo in [AroundAlgorithm::Grid, AroundAlgorithm::Auto] {
            let got = sgb_around(&points, &cfg(algo));
            prop_assert_eq!(&reference, &got, "{:?} {} radius {:?}", algo, metric, radius);
        }
        // Permutation invariance of the grid path: each record keeps its
        // center under any input order.
        let base = reference.assignment(points.len());
        let perm = permutation(points.len(), perm_seed);
        let shuffled: Vec<Point<2>> = perm.iter().map(|&i| points[i]).collect();
        let out = sgb_around(&shuffled, &cfg(AroundAlgorithm::Grid)).assignment(points.len());
        for (pos, &orig) in perm.iter().enumerate() {
            prop_assert_eq!(out[pos], base[orig], "record {} moved centers", orig);
        }
    }

    /// The Auto-selection property in one place: for any workload, the
    /// `Auto` grouping is identical to EVERY concrete algorithm's — the
    /// cost model can only pick among observationally equal plans.
    #[test]
    fn auto_grouping_is_identical_to_every_concrete_algorithm(
        points in vec(arb_point(), 0..130),
        centers in vec(arb_point(), 1..16),
        eps in 0.05f64..1.5,
        metric in arb_metric(),
        overlap in arb_overlap(),
    ) {
        let all_auto = sgb_all(
            &points,
            &SgbAllConfig::new(eps).metric(metric).overlap(overlap).seed(7),
        );
        for algo in [
            AllAlgorithm::AllPairs,
            AllAlgorithm::BoundsChecking,
            AllAlgorithm::Indexed,
            AllAlgorithm::Grid,
        ] {
            let cfg = SgbAllConfig::new(eps)
                .metric(metric)
                .overlap(overlap)
                .algorithm(algo)
                .seed(7);
            prop_assert_eq!(&all_auto, &sgb_all(&points, &cfg), "all {:?}", algo);
        }
        let any_auto = sgb_any(&points, &SgbAnyConfig::new(eps).metric(metric));
        for algo in [
            AnyAlgorithm::AllPairs,
            AnyAlgorithm::Indexed,
            AnyAlgorithm::Grid,
        ] {
            let cfg = SgbAnyConfig::new(eps).metric(metric).algorithm(algo);
            prop_assert_eq!(&any_auto, &sgb_any(&points, &cfg), "any {:?}", algo);
        }
        let around_auto = sgb_around(
            &points,
            &SgbAroundConfig::new(centers.clone()).metric(metric),
        );
        for algo in [
            AroundAlgorithm::BruteForce,
            AroundAlgorithm::Indexed,
            AroundAlgorithm::Grid,
        ] {
            let cfg = SgbAroundConfig::new(centers.clone())
                .metric(metric)
                .algorithm(algo);
            prop_assert_eq!(&around_auto, &sgb_around(&points, &cfg), "around {:?}", algo);
        }
    }
}
