//! Integration tests for the telemetry subsystem: per-query profiles
//! through the core `SgbQuery::telemetry` surface, `EXPLAIN ANALYZE`
//! per-node actuals for all three operators, the session metrics
//! registry (`Database::metrics_text`, Prometheus text format), the
//! slow-query log (`SET SLOW_QUERY_MS`), the cache-counter fold-in
//! (`cache_stats()` and `metrics_text()` can never disagree), and the
//! deadline-governed subscription delta path (a timed-out delta is
//! rejected atomically: nothing publishes, the epoch does not advance).

use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::SgbQuery;
use sgb::geom::Point;
use sgb::relation::Database;
use sgb::telemetry::{Counter, Telemetry};

/// Deterministic point cloud in `[0, 100)²` — xorshift64*, no RNG crate,
/// so every run and every platform sees the same data.
fn cloud(n: usize) -> Vec<Point<2>> {
    let mut state = 0x243F_6A88_85A3_08D3_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let unit = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        unit * 100.0
    };
    (0..n).map(|_| Point::new([next(), next()])).collect()
}

/// A session table `t (x, y)` filled with the same cloud.
fn cloud_db(n: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (x DOUBLE, y DOUBLE)").unwrap();
    for chunk in cloud(n).chunks(10_000) {
        let values: Vec<String> = chunk
            .iter()
            .map(|p| format!("({}, {})", p.coords()[0], p.coords()[1]))
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

// ---------------------------------------------------------------------------
// Core: QueryProfile
// ---------------------------------------------------------------------------

/// A query run with an installed telemetry handle reports a profile whose
/// counters agree with the grouping; a query run without one reports
/// nothing (the disabled handle is the zero-cost default).
#[test]
fn query_profile_counters_agree_with_the_grouping() {
    let pts = cloud(2_000);
    let out = SgbQuery::any(0.8).telemetry(Telemetry::new()).run(&pts);
    let profile = out.profile().expect("telemetry was installed");
    assert_eq!(profile.counter(Counter::Groups), out.num_groups() as u64);
    assert_eq!(
        profile.counter(Counter::Outliers),
        out.outliers().len() as u64
    );
    assert!(
        profile.total_phase_nanos() > 0,
        "no phase time recorded: {}",
        profile.phase_summary()
    );

    // Without a handle: no profile, same answer.
    let plain = SgbQuery::any(0.8).run(&pts);
    assert!(plain.profile().is_none());
    assert_eq!(plain, out);
}

// ---------------------------------------------------------------------------
// SQL: EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

/// `EXPLAIN ANALYZE` annotates **every** plan node with its actual
/// elapsed time and row count, for all three similarity operators, and
/// the similarity node's detail reports its group count.
#[test]
fn explain_analyze_reports_per_node_actuals_for_all_three_operators() {
    let mut db = cloud_db(500);
    for sql in [
        "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 2 ON-OVERLAP ELIMINATE",
        "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2",
        "SELECT count(*) FROM t GROUP BY x, y AROUND ((25, 25), (75, 75)) L2 WITHIN 40",
    ] {
        let out = db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        assert_eq!(out.schema.columns.len(), 1, "EXPLAIN output is one column");
        let text: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
        for line in &text {
            assert!(
                line.contains("actual time:") && line.contains("rows:"),
                "node without actuals in {sql}: {line}"
            );
        }
        let sim_line = text
            .iter()
            .find(|l| l.contains("SimilarityGroupBy") || l.contains("SimilarityAround"))
            .unwrap_or_else(|| panic!("no similarity node in {sql}: {text:?}"));
        assert!(
            sim_line.contains("groups:"),
            "similarity node without group detail: {sim_line}"
        );
        // The method surface renders the same tree as the statement
        // (modulo the run-to-run timing values, so compare shapes).
        let method = db.explain_analyze(sql).unwrap();
        assert_eq!(method.trim_end().lines().count(), text.len());
    }
}

/// Plain `EXPLAIN` through the statement surface stays estimate-only: no
/// actuals, and byte-identical to `Database::explain`.
#[test]
fn explain_statement_without_analyze_has_no_actuals() {
    let mut db = cloud_db(100);
    let sql = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2";
    let out = db.execute(&format!("EXPLAIN {sql}")).unwrap();
    let text: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(text.iter().all(|l| !l.contains("actual time:")), "{text:?}");
    assert_eq!(text.join("\n"), db.explain(sql).unwrap().trim_end());
}

/// The root node's actual row count in `EXPLAIN ANALYZE` equals the row
/// count of actually running the `SELECT` — across operators, epsilons,
/// and input sizes (the acceptance proptest, deterministic here because
/// the inputs enumerate a fixed lattice).
#[test]
fn explain_analyze_row_counts_equal_the_select_results() {
    for n in [40, 230, 600] {
        let mut db = cloud_db(n);
        for sql in [
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5".to_owned(),
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 4".to_owned(),
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 6 \
             ON-OVERLAP ELIMINATE"
                .to_owned(),
            "SELECT count(*), min(x) FROM t \
             GROUP BY x, y AROUND ((20, 20), (50, 50), (80, 80)) L2 WITHIN 25"
                .to_owned(),
        ] {
            let rows = db.execute(&sql).unwrap().rows.len();
            let analyzed = db.explain_analyze(&sql).unwrap();
            let root = analyzed.lines().next().unwrap();
            let reported =
                parse_rows(root).unwrap_or_else(|| panic!("no rows annotation on root: {root}"));
            assert_eq!(reported, rows, "n = {n}, sql = {sql}\n{analyzed}");
        }
    }
}

/// Extracts the integer after `field` (e.g. `"rows: "`, `"groups: "`)
/// from an `EXPLAIN ANALYZE` line.
fn parse_count(line: &str, field: &str) -> Option<usize> {
    let tail = &line[line.find(field)? + field.len()..];
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn parse_rows(line: &str) -> Option<usize> {
    parse_count(line, "rows: ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance property: over random tables, epsilons, and
    /// operators, the `EXPLAIN ANALYZE` root's actual row count equals the
    /// actual `SELECT` result's, and (for the connected-components
    /// operator, where every group emits exactly one output row) the
    /// similarity node's `groups:` detail does too.
    #[test]
    fn explain_analyze_counts_match_the_select(
        rows in vec((0.0f64..10.0, 0.0f64..10.0), 1..80),
        eps in 0.3f64..3.0,
        op in 0usize..3,
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE p (x DOUBLE, y DOUBLE)").unwrap();
        let values: Vec<String> = rows.iter().map(|(x, y)| format!("({x}, {y})")).collect();
        db.execute(&format!("INSERT INTO p VALUES {}", values.join(", "))).unwrap();
        let sql = match op {
            0 => format!("SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN {eps}"),
            1 => format!(
                "SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN {eps} \
                 ON-OVERLAP ELIMINATE"
            ),
            _ => format!(
                "SELECT count(*) FROM p GROUP BY x, y AROUND ((2, 2), (8, 8)) L2 WITHIN {eps}"
            ),
        };
        let rows_out = db.execute(&sql).unwrap().rows.len();
        let analyzed = db.explain_analyze(&sql).unwrap();
        let root = analyzed.lines().next().unwrap();
        prop_assert_eq!(parse_rows(root), Some(rows_out), "root actuals diverged\n{}", analyzed);
        if op == 0 {
            let sim = analyzed
                .lines()
                .find(|l| l.contains("SimilarityGroupBy"))
                .expect("no similarity node");
            prop_assert_eq!(parse_count(sim, "groups: "), Some(rows_out), "{}", analyzed);
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// `metrics_text()` renders valid Prometheus text: every family gets one
/// `# TYPE` header, every sample line is `name{labels} value`, and the
/// statement counters reflect exactly what the session executed.
#[test]
fn metrics_text_is_prometheus_parseable_and_counts_statements() {
    let mut db = cloud_db(100);
    let q = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2";
    db.execute(q).unwrap();
    db.execute(q).unwrap();
    db.execute("SELEC nonsense").unwrap_err();
    let text = db.metrics_text();

    assert!(
        text.contains("# TYPE sgb_statements_total counter"),
        "{text}"
    );
    assert!(text.contains("# TYPE sgb_statement_ms histogram"), "{text}");
    let select_ok = text
        .lines()
        .find(|l| l.starts_with("sgb_statements_total") && l.contains("kind=\"select\""))
        .expect("select counter missing");
    assert!(
        select_ok.contains("outcome=\"ok\"") && select_ok.ends_with(" 2"),
        "{select_ok}"
    );
    assert!(
        text.lines()
            .any(|l| l.contains("kind=\"parse\"") && l.contains("outcome=\"parse\"")),
        "parse failure not counted:\n{text}"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("sgb_operator_runs_total") && l.contains("operator=\"sgb_any\"")),
        "operator counter missing:\n{text}"
    );

    // Shape check: every non-comment line is `name{labels} value` with a
    // parseable float value and balanced label braces.
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (series, value) = line.rsplit_once(' ').expect("sample without value");
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        match series.split_once('{') {
            Some((name, rest)) => {
                assert!(
                    !name.is_empty() && rest.ends_with('}'),
                    "bad series: {line}"
                );
            }
            None => assert!(!series.is_empty(), "bad series: {line}"),
        }
    }
    // Exactly one TYPE header per family.
    let mut seen = std::collections::HashSet::new();
    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let family = line.split_whitespace().nth(2).expect("family name");
        assert!(
            seen.insert(family.to_owned()),
            "duplicate # TYPE for {family}"
        );
    }
}

/// The registry's `sgb_cache_events_total` family mirrors `cache_stats()`
/// exactly at every read — the fold-in happens on access, so the two
/// surfaces cannot disagree.
#[test]
fn cache_stats_and_metrics_text_never_disagree() {
    let mut db = cloud_db(200);
    let q = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2";
    for _ in 0..3 {
        db.execute(q).unwrap();
        let stats = db.cache_stats();
        let metrics = db.metrics();
        for (event, expect) in [
            ("index_hit", stats.index_hits),
            ("index_miss", stats.index_misses),
            ("result_hit", stats.result_hits),
            ("result_miss", stats.result_misses),
            ("eviction", stats.evictions),
            ("validation_skipped", stats.validations_skipped),
        ] {
            assert_eq!(
                metrics.counter_value("sgb_cache_events_total", &[("event", event)]),
                expect,
                "registry and cache_stats disagree on {event}"
            );
        }
    }
    assert!(db.cache_stats().result_hits >= 1, "repeat query never hit");
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// `SET SLOW_QUERY_MS` arms the ring buffer: statements at/over the
/// threshold are recorded with their wall time and outcome; clearing the
/// threshold (0) stops recording. Off by default.
#[test]
fn slow_query_log_records_over_threshold_statements() {
    let mut db = cloud_db(20_000);
    let q = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.4";
    db.execute(q).unwrap();
    assert!(db.slow_queries().is_empty(), "recorded while disarmed");

    // Threshold 1 ms: a 20k-point similarity grouping comfortably exceeds
    // it on any machine (and the entry proves the wall time was measured).
    db.execute("SET SLOW_QUERY_MS = 1").unwrap();
    db.execute(q).unwrap(); // result-cache hit — may or may not be slow
    db.execute("DELETE FROM t WHERE x < 0").unwrap(); // no-op, fast
    db.execute("INSERT INTO t VALUES (1.0, 2.0)").unwrap(); // invalidates caches
    db.execute(q).unwrap(); // recomputes: certainly over 1 ms
    let slow = db.slow_queries();
    let entry = slow
        .iter()
        .rev()
        .find(|e| e.statement == q)
        .expect("the recomputed query was not logged");
    assert_eq!(entry.outcome, "ok");
    assert!(
        entry.millis >= 1.0,
        "logged under threshold: {}",
        entry.millis
    );

    // 0 disarms; the log keeps its entries but gains no more.
    db.execute("SET SLOW_QUERY_MS = 0").unwrap();
    let len = db.slow_queries().len();
    db.execute("INSERT INTO t VALUES (3.0, 4.0)").unwrap();
    db.execute(q).unwrap();
    assert_eq!(db.slow_queries().len(), len, "recorded while disarmed");
}

/// Failed statements are logged too, with their error class as outcome.
#[test]
fn slow_query_log_records_failures_with_their_class() {
    let mut db = cloud_db(100_000);
    db.execute("SET SLOW_QUERY_MS = 1").unwrap();
    db.execute("SET STATEMENT_TIMEOUT = 2").unwrap();
    let q = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.25";
    db.execute(q).unwrap_err(); // 2 ms deadline over 100k points: timeout
    let slow = db.slow_queries();
    let entry = slow
        .iter()
        .rev()
        .find(|e| e.statement == q)
        .expect("the timed-out query was not logged");
    assert_eq!(entry.outcome, "timeout");
}

// ---------------------------------------------------------------------------
// Subscription deltas under the session deadline
// ---------------------------------------------------------------------------

/// A delta that overruns the session deadline is rejected **atomically**:
/// the INSERT itself succeeds (the table is the source of truth), but the
/// subscription publishes nothing — the snapshot epoch and grouping stay
/// exactly where they were — and the handle deactivates rather than
/// silently drifting from the table. The registry records the rejection.
#[test]
fn subscription_delta_timeout_rejects_atomically() {
    let mut db = cloud_db(600);
    let sub = db
        .subscribe("SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5")
        .unwrap();
    let before = sub.snapshot();
    assert!(sub.is_active());

    // A 1 ns deadline is expired by the delta's first governor check —
    // deterministic at any table size (the API accepts what the
    // millisecond-granular SQL surface cannot express).
    let opts = db
        .session()
        .with_statement_timeout(Some(Duration::from_nanos(1)));
    *db.session_mut() = opts;
    db.execute("INSERT INTO t VALUES (200.0, 200.0)").unwrap();
    let opts = db.session().with_statement_timeout(None);
    *db.session_mut() = opts;

    // Atomic rejection: no publish, no epoch advance, handle deactivated.
    assert!(!sub.is_active(), "timed-out delta left the handle active");
    let after = sub.snapshot();
    assert_eq!(
        after.epoch(),
        before.epoch(),
        "epoch advanced past a rejected delta"
    );
    assert_eq!(
        after.grouping().num_groups(),
        before.grouping().num_groups(),
        "grouping changed under a rejected delta"
    );
    assert_eq!(
        db.metrics()
            .counter_value("sgb_subscription_deltas_total", &[("outcome", "rejected")]),
        1
    );

    // The deactivated subscription ignores later deltas (no resurrection)…
    db.execute("INSERT INTO t VALUES (201.0, 201.0)").unwrap();
    assert!(!sub.is_active());
    assert_eq!(sub.snapshot().epoch(), before.epoch());
    // …and the session itself keeps serving correct answers.
    let sql = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5";
    let live = db.execute(sql).unwrap();
    let mut fresh = cloud_db(600);
    fresh
        .execute("INSERT INTO t VALUES (200.0, 200.0), (201.0, 201.0)")
        .unwrap();
    assert_eq!(live, fresh.execute(sql).unwrap());
}

/// An ungoverned session applies the same delta fine: the counter records
/// the applied outcome and the epoch advances — the deadline, not the
/// telemetry, is what rejected the delta above.
#[test]
fn subscription_delta_without_deadline_applies_and_counts() {
    let mut db = cloud_db(600);
    let sub = db
        .subscribe("SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5")
        .unwrap();
    let epoch0 = sub.snapshot().epoch();
    db.execute("INSERT INTO t VALUES (200.0, 200.0)").unwrap();
    assert!(sub.is_active());
    assert!(sub.snapshot().epoch() > epoch0);
    assert_eq!(
        db.metrics()
            .counter_value("sgb_subscription_deltas_total", &[("outcome", "applied")]),
        1
    );
    assert_eq!(
        db.metrics()
            .counter_value("sgb_subscription_deltas_total", &[("outcome", "rejected")]),
        0
    );
}
