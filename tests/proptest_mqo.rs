//! Property tests for the shared-work multi-query layer: over random
//! query mixes with interleaved INSERTs and DROP/CREATE cycles, a session
//! with the cache enabled must produce **bit-identical** result tables to
//! a cache-disabled session — and `run_batch` must match statement-by-
//! statement execution. Session-pinned algorithms are part of the random
//! mix so the R-tree and ε-grid cached paths are exercised even at the
//! small cardinalities proptest generates.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::{Algorithm, Metric, SgbCache, SgbQuery};
use sgb::geom::Point;
use sgb::relation::{Database, SessionOptions};

/// One step of a random session: a similarity SELECT, an INSERT, a
/// predicate DELETE, a predicate UPDATE (a delete+insert pair through the
/// same maintenance path), or a DROP + CREATE cycle that resets the table
/// (every mutation kind must invalidate the cached indexes and results
/// built for the table).
#[derive(Clone, Debug)]
enum Op {
    Query(String),
    Insert(f64, f64),
    Delete(f64),
    Update(f64, f64),
    Recreate,
}

impl Op {
    fn statements(&self) -> Vec<String> {
        match self {
            Op::Query(sql) => vec![sql.clone()],
            Op::Insert(x, y) => vec![format!("INSERT INTO t VALUES ({x}, {y})")],
            Op::Delete(cut) => vec![format!("DELETE FROM t WHERE x > {cut}")],
            Op::Update(cut, shift) => vec![format!(
                "UPDATE t SET x = x + {shift}, y = y WHERE x < {cut}"
            )],
            Op::Recreate => vec![
                "DROP TABLE t".into(),
                "CREATE TABLE t (x DOUBLE, y DOUBLE)".into(),
            ],
        }
    }
}

/// A random similarity SELECT over `t` — all three operator families,
/// random metric and ε so repeats, ε-supersets, and fresh shapes all
/// occur in a mix.
fn metric() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["L1", "L2", "LINF"])
}

/// A coarse ε lattice makes exact repeats (result-cache hits) likely
/// while still varying the grid cell size across the mix.
fn eps() -> impl Strategy<Value = f64> {
    (1u32..6).prop_map(|k| f64::from(k) * 0.5)
}

fn arb_query() -> impl Strategy<Value = String> {
    prop_oneof![
        (eps(), metric()).prop_map(|(e, m)| format!(
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY {m} WITHIN {e}"
        )),
        (eps(), metric()).prop_map(|(e, m)| format!(
            "SELECT count(*), min(x) FROM t \
             GROUP BY x, y AROUND ((1, 1), (5, 5), (2.5, 6)) {m} WITHIN {e}"
        )),
        (eps(), metric()).prop_map(|(e, m)| format!(
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ALL {m} WITHIN {e}"
        )),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_query().prop_map(Op::Query),
        arb_query().prop_map(Op::Query),
        arb_query().prop_map(Op::Query),
        (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Op::Insert(x, y)),
        // A high cut deletes a thin slice (often nothing); a low cut can
        // empty the table — both ends stress cache invalidation.
        (0.0f64..8.0).prop_map(Op::Delete),
        // Updates rewrite a random slice in place (rows move to the end of
        // the table), exercising the delete+insert maintenance route.
        (0.0f64..8.0, -2.0f64..2.0).prop_map(|(cut, shift)| Op::Update(cut, shift)),
        Just(Op::Recreate),
    ]
}

/// `Auto` plus every algorithm valid for both DISTANCE-TO-ANY and AROUND.
fn pick(i: usize) -> Algorithm {
    [
        Algorithm::Auto,
        Algorithm::AllPairs,
        Algorithm::Grid,
        Algorithm::Indexed,
    ][i]
}

fn seed_db(opts: SessionOptions, initial: &[(f64, f64)]) -> Database {
    let mut db = Database::with_options(opts);
    db.execute("CREATE TABLE t (x DOUBLE, y DOUBLE)").unwrap();
    for (x, y) in initial {
        db.execute(&format!("INSERT INTO t VALUES ({x}, {y})"))
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cached session and the cache-disabled session agree —
    /// bit-identically, errors included — on every statement of a random
    /// mix of queries, inserts, and table drops.
    #[test]
    fn cached_execution_is_bit_identical_to_cold(
        initial in vec((0.0f64..8.0, 0.0f64..8.0), 0..20),
        ops in vec(arb_op(), 1..24),
        any_algo in 0usize..4,
        around_algo in 0usize..4,
    ) {
        let opts = SessionOptions::new()
            .with_any_algorithm(pick(any_algo))
            .with_around_algorithm(pick(around_algo));
        let mut warm = seed_db(opts, &initial);
        let mut cold = seed_db(opts.with_cache(false), &initial);
        for op in &ops {
            for sql in op.statements() {
                match (warm.execute(&sql), cold.execute(&sql)) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "on {}", sql),
                    (Err(a), Err(b)) => {
                        prop_assert_eq!(a.to_string(), b.to_string(), "on {}", sql)
                    }
                    (a, b) => prop_assert!(
                        false,
                        "warm and cold disagree on {sql}: {a:?} vs {b:?}"
                    ),
                }
            }
        }
    }

    /// `run_batch` (shared index prewarm + result caching) returns exactly
    /// the tables that statement-by-statement cache-off execution returns,
    /// in order, for mixes of SELECTs and INSERTs.
    #[test]
    fn run_batch_matches_sequential_execution(
        initial in vec((0.0f64..8.0, 0.0f64..8.0), 0..20),
        ops in vec(
            prop_oneof![
                arb_query().prop_map(Op::Query),
                arb_query().prop_map(Op::Query),
                arb_query().prop_map(Op::Query),
                (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Op::Insert(x, y)),
                (0.0f64..8.0).prop_map(Op::Delete),
                (0.0f64..8.0, -2.0f64..2.0).prop_map(|(cut, shift)| Op::Update(cut, shift)),
            ],
            1..20,
        ),
        any_algo in 0usize..4,
    ) {
        let opts = SessionOptions::new().with_any_algorithm(pick(any_algo));
        let mut batched = seed_db(opts, &initial);
        let mut sequential = seed_db(opts.with_cache(false), &initial);
        let stmts: Vec<String> = ops.iter().flat_map(|op| op.statements()).collect();
        let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
        let outs = batched.run_batch(&refs).unwrap();
        prop_assert_eq!(outs.len(), refs.len());
        for (sql, got) in refs.iter().zip(outs) {
            prop_assert_eq!(got, sequential.execute(sql).unwrap(), "on {}", sql);
        }
    }

    /// At the core layer, `SgbQuery::run_cached` against one shared
    /// warming cache equals `SgbQuery::run` — full `Grouping` equality
    /// (groups, eliminated, outliers), plus resolved-algorithm equality
    /// whenever the algorithm is pinned (under `Auto` the cache-aware
    /// cost model may legitimately pick a different, free index path).
    #[test]
    fn core_run_cached_matches_cold_run(
        points in vec((0.0f64..8.0, 0.0f64..8.0), 0..30),
        queries in vec((0usize..3, 0usize..4, 1u32..6, 0usize..3), 1..12),
    ) {
        let pts: Vec<Point<2>> =
            points.iter().map(|&(x, y)| Point::new([x, y])).collect();
        let cache = SgbCache::new();
        for (op, algo, eps_k, metric_i) in queries {
            let eps = f64::from(eps_k) * 0.5;
            let metric = [Metric::L1, Metric::L2, Metric::LInf][metric_i];
            let query = match op {
                0 => SgbQuery::any(eps),
                1 => SgbQuery::all(eps),
                _ => SgbQuery::around(vec![
                    Point::new([1.0, 1.0]),
                    Point::new([5.0, 5.0]),
                    Point::new([2.5, 6.0]),
                ])
                .max_radius(eps),
            }
            .metric(metric)
            .algorithm(pick(algo));
            let cold = query.run(&pts);
            let cached = query.run_cached(&pts, &cache, 7);
            prop_assert_eq!(&cold, &cached);
            if pick(algo) != Algorithm::Auto {
                prop_assert_eq!(cold.resolved_algorithm(), cached.resolved_algorithm());
            }
        }
    }

    /// Repeating one query never changes its answer as the cache warms,
    /// and the session's counters actually move: the second run of an
    /// identical statement is a result-cache hit.
    #[test]
    fn repeat_queries_hit_and_stay_identical(
        initial in vec((0.0f64..8.0, 0.0f64..8.0), 1..20),
        sql in arb_query(),
    ) {
        let mut db = seed_db(SessionOptions::new(), &initial);
        let first = db.execute(&sql).unwrap();
        let second = db.execute(&sql).unwrap();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(db.cache_stats().result_hits, 1);
        // An INSERT bumps the table version: the third run recomputes
        // (no new result hit) yet still agrees with cold execution.
        db.execute("INSERT INTO t VALUES (3.25, 3.25)").unwrap();
        let third = db.execute(&sql).unwrap();
        prop_assert_eq!(db.cache_stats().result_hits, 1);
        let mut cold = seed_db(SessionOptions::new().with_cache(false), &initial);
        cold.execute("INSERT INTO t VALUES (3.25, 3.25)").unwrap();
        prop_assert_eq!(third, cold.execute(&sql).unwrap());
    }
}
