//! Property-based proof that the unified `SgbQuery` surface is
//! **bit-identical** to the legacy per-operator entry points
//! (`sgb_all` / `sgb_any` / `sgb_around` with their `Sgb*Config` types)
//! for random point sets and every knob combination: metric, algorithm,
//! overlap semantics, seed, and radius bound. The query builder is a pure
//! re-surfacing of the execution layer — it must never change a grouping,
//! only how it is spelled.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::{
    sgb_all, sgb_any, sgb_around, OverlapAction, SgbAllConfig, SgbAnyConfig, SgbAroundConfig,
};
use sgb::{Algorithm, Metric, Point, SgbQuery};

fn arb_point() -> impl Strategy<Value = Point<2>> {
    (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Point::new([x, y]))
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![Just(Metric::L1), Just(Metric::L2), Just(Metric::LInf)]
}

fn arb_overlap() -> impl Strategy<Value = OverlapAction> {
    prop_oneof![
        Just(OverlapAction::JoinAny),
        Just(OverlapAction::Eliminate),
        Just(OverlapAction::FormNewGroup),
    ]
}

/// Every unified algorithm applicable to SGB-All.
fn arb_all_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Auto),
        Just(Algorithm::AllPairs),
        Just(Algorithm::BoundsChecking),
        Just(Algorithm::Indexed),
        Just(Algorithm::Grid),
    ]
}

/// Every unified algorithm applicable to SGB-Any / SGB-Around.
fn arb_scan_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Auto),
        Just(Algorithm::AllPairs),
        Just(Algorithm::Indexed),
        Just(Algorithm::Grid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SGB-All: `SgbQuery::all(…).run()` reproduces `sgb_all` exactly —
    /// same groups in the same order with the same members, same
    /// eliminated set — for every metric × algorithm × overlap × seed.
    #[test]
    fn all_query_is_bit_identical_to_legacy(
        points in vec(arb_point(), 0..150),
        eps in 0.05f64..2.0,
        metric in arb_metric(),
        algorithm in arb_all_algorithm(),
        overlap in arb_overlap(),
        seed in any::<u64>(),
    ) {
        let new = SgbQuery::all(eps)
            .metric(metric)
            .algorithm(algorithm)
            .overlap(overlap)
            .seed(seed)
            .run(&points);
        let old = sgb_all(
            &points,
            &SgbAllConfig::new(eps)
                .metric(metric)
                .algorithm(algorithm.for_all())
                .overlap(overlap)
                .seed(seed),
        );
        prop_assert_eq!(new.groups(), old.groups.as_slice());
        prop_assert_eq!(new.eliminated(), old.eliminated.as_slice());
        prop_assert!(new.outliers().is_empty());
        prop_assert_ne!(new.resolved_algorithm(), Algorithm::Auto);
    }

    /// SGB-Any: `SgbQuery::any(…).run()` reproduces `sgb_any` exactly,
    /// and the unified stream reproduces the legacy streaming operator.
    #[test]
    fn any_query_and_stream_are_bit_identical_to_legacy(
        points in vec(arb_point(), 0..200),
        eps in 0.0f64..2.0,
        metric in arb_metric(),
        algorithm in arb_scan_algorithm(),
    ) {
        let cfg = SgbAnyConfig::new(eps)
            .metric(metric)
            .algorithm(algorithm.for_any().unwrap());
        let old = sgb_any(&points, &cfg);
        let new = SgbQuery::any(eps)
            .metric(metric)
            .algorithm(algorithm)
            .run(&points);
        prop_assert_eq!(new.groups(), old.groups.as_slice());
        prop_assert!(new.eliminated().is_empty());

        // Streaming path: same components, same resolved strategy as the
        // legacy streaming operator under the same configuration.
        let mut legacy = sgb::core::SgbAny::new(cfg);
        let mut stream = SgbQuery::any(eps)
            .metric(metric)
            .algorithm(algorithm)
            .stream();
        prop_assert_eq!(
            stream.resolved_algorithm(),
            Algorithm::from(legacy.resolved_algorithm())
        );
        for p in &points {
            legacy.push(*p);
            stream.push(*p);
        }
        let streamed = stream.finish();
        let legacy_out = legacy.finish();
        prop_assert_eq!(streamed.groups(), legacy_out.groups.as_slice());
    }

    /// SGB-Around: the unified result carries the legacy grouping's
    /// non-empty center groups (in center order) plus the same outlier
    /// set, and the flattened output shape equals the legacy SQL shape.
    #[test]
    fn around_query_is_bit_identical_to_legacy(
        points in vec(arb_point(), 0..120),
        centers in vec(arb_point(), 1..24),
        metric in arb_metric(),
        algorithm in arb_scan_algorithm(),
        radius in prop_oneof![Just(None), (0.0f64..4.0).prop_map(Some)],
    ) {
        let mut cfg = SgbAroundConfig::new(centers.clone())
            .metric(metric)
            .algorithm(algorithm.for_around().unwrap());
        let mut query = SgbQuery::around(centers.clone())
            .metric(metric)
            .algorithm(algorithm);
        if let Some(r) = radius {
            cfg = cfg.max_radius(r);
            query = query.max_radius(r);
        }
        let old = sgb_around(&points, &cfg);
        let new = query.run(&points);

        let old_nonempty: Vec<Vec<usize>> = old
            .groups
            .iter()
            .filter(|g| !g.is_empty())
            .cloned()
            .collect();
        prop_assert_eq!(new.groups(), old_nonempty.as_slice());
        prop_assert_eq!(new.outliers(), old.outliers.as_slice());
        prop_assert!(new.eliminated().is_empty());
        new.check_partition(points.len());

        // The relational output shape (outliers appended as the trailing
        // group) equals the legacy conversion used by the SQL executor.
        let flat: Vec<&[usize]> = new.output_groups().collect();
        let legacy_flat = old.grouping();
        let legacy_groups: Vec<&[usize]> =
            legacy_flat.groups.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(flat, legacy_groups);
    }

    /// The builder's knob plumbing is faithful end to end: a query run
    /// under an explicitly pinned algorithm reports that algorithm with
    /// the "configured explicitly" reason, and `Auto` always resolves to
    /// a concrete path whose grouping equals every other path's.
    #[test]
    fn resolution_metadata_is_consistent(
        points in vec(arb_point(), 0..100),
        eps in 0.05f64..1.5,
        metric in arb_metric(),
    ) {
        let auto = SgbQuery::any(eps).metric(metric).run(&points);
        prop_assert_ne!(auto.resolved_algorithm(), Algorithm::Auto);
        for algorithm in [Algorithm::AllPairs, Algorithm::Indexed, Algorithm::Grid] {
            let pinned = SgbQuery::any(eps)
                .metric(metric)
                .algorithm(algorithm)
                .run(&points);
            prop_assert_eq!(pinned.resolved_algorithm(), algorithm);
            prop_assert_eq!(pinned.selection_reason(), "configured explicitly");
            prop_assert_eq!(&auto, &pinned);
        }
    }
}
