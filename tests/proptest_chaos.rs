//! Fault-injection chaos harness (the `failpoints` feature): random
//! query / INSERT / DELETE / UPDATE mixes against one long-lived session
//! while faults fire at every injection site in the engine, asserting
//! after **every** injected fault that the session's next statements are
//! bit-identical to a fresh `Database` over the same data — a failed
//! statement may produce nothing, but it may never corrupt the session.
//!
//! Everything runs in a single `#[test]`: the failpoint registry is
//! process-global, so phases that arm faults must not race phases that
//! assume none are armed. Both the op mix and the fault rolls come from
//! fixed-seed xorshift generators, so a CI failure replays locally
//! bit-for-bit.
#![cfg(feature = "failpoints")]

use sgb::core::{Algorithm, QueryGovernor, SgbError, SgbQuery};
use sgb::geom::Point;
use sgb::relation::{Database, Error, SessionOptions};

/// Deterministic xorshift64* op generator — independent of the failpoint
/// registry's own PRNG so arming order never shifts the op mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Every typed-error injection site in the engine, armed together during
/// the chaos loop. `store_result` is the benign one — it silently skips a
/// result-cache store, which must never change any answer.
const SITES: &[(&str, &str)] = &[
    ("sgb_core::any::grid_join", "30%return"),
    ("sgb_core::around::assign", "30%return"),
    ("sgb_core::incremental::insert_pre", "20%return"),
    ("sgb_core::incremental::insert_post", "20%return"),
    ("sgb_core::incremental::delete_pre", "20%return"),
    ("sgb_core::incremental::delete_post", "20%return"),
    ("sgb_core::cache::store_result", "30%return"),
];

fn arm() {
    for (site, action) in SITES {
        failpoints::cfg(*site, action).expect("valid action spec");
    }
}

fn disarm() {
    failpoints::teardown();
}

/// The session options under chaos: the ε-grid pinned (so the grid-join
/// site is actually on the hot path at these cardinalities) with every
/// shared-work cache enabled.
fn options() -> SessionOptions {
    SessionOptions::new().with_any_algorithm(Algorithm::Grid)
}

fn seed_statement(rows: &[(f64, f64)]) -> Option<String> {
    if rows.is_empty() {
        return None;
    }
    let values: Vec<String> = rows.iter().map(|(x, y)| format!("({x}, {y})")).collect();
    Some(format!("INSERT INTO t VALUES {}", values.join(", ")))
}

/// A fresh database over exactly `rows` — the oracle the chaotic session
/// must stay bit-identical to.
fn fresh_db(rows: &[(f64, f64)]) -> Database {
    let mut db = Database::with_options(options());
    db.execute("CREATE TABLE t (x DOUBLE, y DOUBLE)").unwrap();
    if let Some(stmt) = seed_statement(rows) {
        db.execute(&stmt).unwrap();
    }
    db
}

/// The probe set: one statement per operator family, including the
/// subscription's own query so a poisoned snapshot cannot hide (the
/// session serves that probe straight from the published snapshot).
const PROBES: &[&str] = &[
    "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1",
    "SELECT count(*), min(x) FROM t GROUP BY x, y AROUND ((2, 2), (6, 6)) L2 WITHIN 1.5",
    "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 1 ON-OVERLAP ELIMINATE",
];

#[test]
fn chaos_faults_never_corrupt_the_session() {
    // ---- Phase A: a worker panic surfaces as a typed error, not an abort.
    disarm();
    failpoints::cfg("scoped_threadpool::run_job", "panic(injected worker crash)").unwrap();
    let pts: Vec<Point<2>> = (0..512)
        .map(|i| Point::new([f64::from(i % 32), f64::from(i / 32)]))
        .collect();
    let sharded = SgbQuery::any(0.75)
        .algorithm(Algorithm::Grid)
        .threads(3)
        .try_run(&pts, &QueryGovernor::unrestricted());
    match sharded {
        Err(SgbError::WorkerPanicked { ref message }) => {
            assert!(
                message.contains("injected worker crash"),
                "panic payload lost: {message}"
            );
        }
        ref other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    failpoints::remove("scoped_threadpool::run_job");
    // The same query completes once the fault is gone (nothing poisoned).
    let clean = SgbQuery::any(0.75)
        .algorithm(Algorithm::Grid)
        .threads(3)
        .try_run(&pts, &QueryGovernor::unrestricted())
        .unwrap();
    assert_eq!(
        clean,
        SgbQuery::any(0.75)
            .algorithm(Algorithm::Grid)
            .try_run(&pts, &QueryGovernor::unrestricted())
            .unwrap()
    );

    // ---- Phase B: the chaos loop. --------------------------------------
    const MIN_FAULTS: u64 = 500;
    const MAX_OPS: usize = 6000;

    failpoints::set_seed(0x5EED_CAFE_F00D_0001);
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);

    let mut db = Database::with_options(options());
    db.execute("CREATE TABLE t (x DOUBLE, y DOUBLE)").unwrap();
    let mut mirror: Vec<(f64, f64)> = Vec::new();
    for _ in 0..24 {
        let (x, y) = (rng.unit() * 8.0, rng.unit() * 8.0);
        db.execute(&format!("INSERT INTO t VALUES ({x}, {y})"))
            .unwrap();
        mirror.push((x, y));
    }
    // The subscription rides through every fault: deltas that fail inject
    // a rebuild, never a stale or partial snapshot.
    let sub = db.subscribe(PROBES[0]).unwrap();
    let mut last_epoch = sub.snapshot().epoch();

    let fires_at_start = failpoints::fires();
    let mut ops = 0usize;
    let mut statements_failed = 0u64;
    // Every subscription delta batch the loop triggers (INSERT: one;
    // non-empty DELETE: one; non-empty UPDATE: delete+insert pair) — the
    // oracle for the registry's delta-outcome counters.
    let mut delta_batches = 0u64;
    while failpoints::fires() - fires_at_start < MIN_FAULTS && ops < MAX_OPS {
        ops += 1;
        arm();
        let fires_before = failpoints::fires();
        let roll = if mirror.len() > 120 {
            3 // deletes only, once the table is large enough
        } else {
            rng.below(6)
        };
        match roll {
            // Similarity SELECTs — the only statements allowed to fail,
            // and only ever with a typed abort.
            0 | 1 => {
                let eps = 0.5 * (1 + rng.below(4)) as f64;
                let sql = if roll == 0 {
                    format!("SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN {eps}")
                } else {
                    format!(
                        "SELECT count(*) FROM t GROUP BY x, y AROUND ((2, 2), (6, 6)) L2 WITHIN {eps}"
                    )
                };
                if let Err(err) = db.execute(&sql) {
                    statements_failed += 1;
                    assert!(
                        matches!(err, Error::Aborted(_)),
                        "fault leaked as an untyped error: {err}"
                    );
                }
            }
            // Mutations always succeed: faults here strand only the
            // subscription's delta, which must recover by rebuilding.
            2 => {
                let k = 1 + rng.below(3);
                let rows: Vec<(f64, f64)> = (0..k)
                    .map(|_| (rng.unit() * 8.0, rng.unit() * 8.0))
                    .collect();
                db.execute(&seed_statement(&rows).unwrap()).unwrap();
                mirror.extend(rows);
                delta_batches += 1;
            }
            3 => {
                let cut = rng.unit() * 8.0;
                if mirror.iter().any(|&(x, _)| x > cut) {
                    delta_batches += 1; // an empty DELETE notifies no one
                }
                db.execute(&format!("DELETE FROM t WHERE x > {cut}"))
                    .unwrap();
                mirror.retain(|&(x, _)| x <= cut);
            }
            4 => {
                let cut = rng.unit() * 8.0;
                let shift = rng.unit() * 4.0 - 2.0;
                if mirror.iter().any(|&(x, _)| x < cut) {
                    delta_batches += 2; // UPDATE runs as a delete+insert pair
                }
                db.execute(&format!("UPDATE t SET x = x + {shift} WHERE x < {cut}"))
                    .unwrap();
                // Replay of UPDATE-as-delete+insert: touched rows move to
                // the end, right-hand sides read the old row.
                let touched: Vec<(f64, f64)> = mirror
                    .iter()
                    .filter(|&&(x, _)| x < cut)
                    .map(|&(x, y)| (x + shift, y))
                    .collect();
                mirror.retain(|&(x, _)| x >= cut);
                mirror.extend(touched);
            }
            _ => {
                // A plain scan keeps non-similarity paths in the mix.
                let out = db.execute("SELECT count(*) FROM t").unwrap();
                assert_eq!(out.rows[0][0].to_string(), mirror.len().to_string());
            }
        }
        let faulted = failpoints::fires() > fires_before;
        disarm();

        // After every injected fault (and periodically regardless): the
        // session must answer exactly like a database that never saw one,
        // and its metrics registry must stay coherent with what the loop
        // actually observed.
        if faulted || ops % 16 == 0 {
            assert_registry_coherent(&db, statements_failed, delta_batches);
            let mut oracle = fresh_db(&mirror);
            for probe in PROBES {
                let got = db
                    .execute(probe)
                    .unwrap_or_else(|e| panic!("probe failed with faults disarmed: {e} ({probe})"));
                let want = oracle.execute(probe).unwrap();
                assert_eq!(got, want, "session diverged from fresh database on {probe}");
            }
            let snap = sub.snapshot();
            assert!(sub.is_active(), "subscription deactivated under chaos");
            assert!(
                snap.epoch() >= last_epoch,
                "snapshot epoch went backwards: {last_epoch} -> {}",
                snap.epoch()
            );
            last_epoch = snap.epoch();
        }
    }
    disarm();

    let fired = failpoints::fires() - fires_at_start;
    assert!(
        fired >= MIN_FAULTS,
        "chaos loop injected only {fired} faults in {ops} ops (wanted {MIN_FAULTS})"
    );
    // Sanity: the mix actually exercised the typed-abort path.
    assert!(
        statements_failed > 0,
        "no statement ever failed under chaos"
    );

    // ---- Phase C: after the storm, the session is still fully usable. --
    let mut oracle = fresh_db(&mirror);
    for probe in PROBES {
        assert_eq!(db.execute(probe).unwrap(), oracle.execute(probe).unwrap());
    }
    db.execute("INSERT INTO t VALUES (4.25, 4.25)").unwrap();
    delta_batches += 1;
    assert!(sub.snapshot().epoch() >= last_epoch);
    assert_registry_coherent(&db, statements_failed, delta_batches);
}

/// The registry-coherence invariant, checked after every injected fault:
///
/// * the non-`ok` statement count equals the `Err`s the loop actually
///   observed — a fault that aborts a statement is counted exactly once,
///   and a fault the engine absorbed (a skipped cache store, a recovered
///   delta) is not counted as a failure;
/// * every statement produced exactly **one** latency observation — a
///   query killed mid-flight must not leak a second, partial timing into
///   the histogram;
/// * the subscription delta outcomes add up: no deadline is set, so
///   nothing may ever be `rejected`, and `applied + recovered` equals the
///   delta batches the mutations triggered.
fn assert_registry_coherent(db: &Database, statements_failed: u64, delta_batches: u64) {
    let metrics = db.metrics();
    let total = metrics.counter_total("sgb_statements_total");
    let ok: u64 = [
        "create_table",
        "insert",
        "delete",
        "update",
        "select",
        "set",
        "drop_table",
        "explain",
    ]
    .iter()
    .map(|kind| metrics.counter_value("sgb_statements_total", &[("kind", kind), ("outcome", "ok")]))
    .sum();
    assert_eq!(
        total - ok,
        statements_failed,
        "registry error counters diverged from the Errs the loop observed"
    );
    assert_eq!(
        metrics.histogram_count("sgb_statement_ms"),
        total,
        "statement latency observations != statements (a partial timing leaked)"
    );
    let deltas = "sgb_subscription_deltas_total";
    assert_eq!(
        metrics.counter_value(deltas, &[("outcome", "rejected")]),
        0,
        "a delta was deadline-rejected with no deadline set"
    );
    assert_eq!(
        metrics.counter_value(deltas, &[("outcome", "applied")])
            + metrics.counter_value(deltas, &[("outcome", "recovered")]),
        delta_batches,
        "delta outcomes do not add up to the batches the mutations triggered"
    );
}
