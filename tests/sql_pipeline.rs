//! End-to-end SQL pipeline tests over generated TPC-H-like data: the
//! engine's similarity group-by must agree with running the core operator
//! directly over the extracted points, and standard SQL answers must agree
//! with hand-rolled computation.

use std::collections::HashMap;

use sgb::core::{sgb_any, SgbAnyConfig};
use sgb::datagen::TpchConfig;
use sgb::geom::{Metric, Point};
use sgb::relation::{Database, Value};

fn small_db() -> Database {
    let mut db = Database::new();
    TpchConfig::new(1.0)
        .density(0.002)
        .generate()
        .register_all(&mut db);
    db
}

#[test]
fn standard_group_by_matches_manual_aggregation() {
    let db = small_db();
    let out = db
        .query("SELECT o_custkey, count(*), sum(o_totalprice) FROM orders GROUP BY o_custkey")
        .unwrap();
    // Manual aggregation over the raw table.
    let orders = db.table("orders").unwrap();
    let mut manual: HashMap<i64, (i64, f64)> = HashMap::new();
    for row in &orders.rows {
        let cust = row[1].as_i64().unwrap();
        let price = row[2].as_f64().unwrap();
        let e = manual.entry(cust).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += price;
    }
    assert_eq!(out.len(), manual.len());
    for row in &out.rows {
        let cust = row[0].as_i64().unwrap();
        let (n, total) = manual[&cust];
        assert_eq!(row[1].as_i64().unwrap(), n);
        assert!((row[2].as_f64().unwrap() - total).abs() < 1e-6);
    }
}

#[test]
fn join_count_matches_manual_join() {
    let db = small_db();
    let out = db
        .query(
            "SELECT count(*) FROM customer, orders \
             WHERE c_custkey = o_custkey AND c_acctbal > 0",
        )
        .unwrap();
    let customers = db.table("customer").unwrap();
    let positive: std::collections::HashSet<i64> = customers
        .rows
        .iter()
        .filter(|r| r[2].as_f64().unwrap() > 0.0)
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    let manual = db
        .table("orders")
        .unwrap()
        .rows
        .iter()
        .filter(|r| positive.contains(&r[1].as_i64().unwrap()))
        .count();
    assert_eq!(out.scalar().unwrap().as_i64().unwrap() as usize, manual);
}

#[test]
fn sql_sgb_any_matches_core_operator() {
    let db = small_db();
    // Through SQL.
    let out = db
        .query(
            "SELECT count(*) FROM customer \
             GROUP BY c_acctbal / 11000.0, c_nationkey / 25.0 \
             DISTANCE-TO-ANY L2 WITHIN 0.05",
        )
        .unwrap();
    // Directly through the operator on extracted points.
    let customers = db.table("customer").unwrap();
    let points: Vec<Point<2>> = customers
        .rows
        .iter()
        .map(|r| {
            Point::new([
                r[2].as_f64().unwrap() / 11000.0,
                r[3].as_f64().unwrap() / 25.0,
            ])
        })
        .collect();
    let grouping = sgb_any(&points, &SgbAnyConfig::new(0.05).metric(Metric::L2));
    assert_eq!(out.len(), grouping.num_groups());
    let mut sql_counts: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    sql_counts.sort_unstable();
    let mut core_counts: Vec<i64> = grouping.sizes().iter().map(|&s| s as i64).collect();
    core_counts.sort_unstable();
    assert_eq!(sql_counts, core_counts);
}

#[test]
fn sgb_all_sum_is_preserved_under_join_any() {
    // JOIN-ANY only redistributes records among groups: the total of any
    // summed measure is invariant.
    let db = small_db();
    let total = db
        .query("SELECT sum(c_acctbal) FROM customer")
        .unwrap()
        .scalar()
        .unwrap()
        .as_f64()
        .unwrap();
    let grouped = db
        .query(
            "SELECT sum(s) FROM (SELECT sum(c_acctbal) AS s FROM customer \
             GROUP BY c_acctbal / 11000.0, c_nationkey / 25.0 \
             DISTANCE-TO-ALL L2 WITHIN 0.1 ON-OVERLAP JOIN-ANY) AS g",
        )
        .unwrap()
        .scalar()
        .unwrap()
        .as_f64()
        .unwrap();
    assert!((total - grouped).abs() < 1e-6, "{total} vs {grouped}");
}

#[test]
fn in_subquery_with_having_selects_large_orders() {
    let db = small_db();
    let out = db
        .query(
            "SELECT count(*) FROM orders WHERE o_orderkey IN \
             (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey \
              HAVING sum(l_quantity) > 150)",
        )
        .unwrap();
    // Manual.
    let lineitem = db.table("lineitem").unwrap();
    let mut qty: HashMap<i64, i64> = HashMap::new();
    for row in &lineitem.rows {
        *qty.entry(row[0].as_i64().unwrap()).or_insert(0) += row[3].as_i64().unwrap();
    }
    let manual = qty.values().filter(|&&q| q > 150).count();
    assert_eq!(out.scalar().unwrap().as_i64().unwrap() as usize, manual);
    assert!(manual > 0, "the workload should contain large orders");
}

#[test]
fn date_range_filter_matches_manual_count() {
    let db = small_db();
    let out = db
        .query(
            "SELECT count(*) FROM lineitem \
             WHERE l_shipdate > date '1995-01-01' \
               AND l_shipdate < date '1995-01-01' + interval '10' month",
        )
        .unwrap();
    let lo = sgb::relation::value::parse_date("1995-01-01").unwrap();
    let hi = sgb::relation::value::add_months_days(lo, 10, 0);
    let manual = db
        .table("lineitem")
        .unwrap()
        .rows
        .iter()
        .filter(|r| {
            let Value::Date(d) = r[6] else {
                panic!("expected date")
            };
            d > lo && d < hi
        })
        .count();
    assert_eq!(out.scalar().unwrap().as_i64().unwrap() as usize, manual);
}

#[test]
fn engine_algorithm_setting_changes_plan_not_result() {
    use sgb::Algorithm;
    // ε is chosen off the data's value grid (acctbal cents / 11000,
    // nationkey / 25): distances that tie with ε only up to floating-point
    // rounding may legitimately be arbitrated differently by the rectangle
    // filter and the member scan (see DESIGN.md), so an on-grid ε such as
    // 0.08 would make this equality over-constrained.
    let sql = "SELECT count(*) FROM customer \
               GROUP BY c_acctbal / 11000.0, c_nationkey / 25.0 \
               DISTANCE-TO-ALL LINF WITHIN 0.0777 ON-OVERLAP ELIMINATE";
    let mut results = Vec::new();
    for algo in [
        Algorithm::AllPairs,
        Algorithm::BoundsChecking,
        Algorithm::Indexed,
    ] {
        let mut db = small_db();
        db.session_mut().all_algorithm = algo;
        results.push(db.query(sql).unwrap().sorted());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);

    let any_sql = "SELECT count(*) FROM customer \
                   GROUP BY c_acctbal / 11000.0, c_nationkey / 25.0 \
                   DISTANCE-TO-ANY LINF WITHIN 0.04";
    let mut results = Vec::new();
    for algo in [Algorithm::AllPairs, Algorithm::Indexed] {
        let mut db = small_db();
        db.session_mut().any_algorithm = algo;
        results.push(db.query(any_sql).unwrap().sorted());
    }
    assert_eq!(results[0], results[1]);
}

/// A fixture on which the three Minkowski norms produce three different
/// groupings at ε = 1: the pair distances are chosen between the diamond,
/// the disc, and the square.
///
/// * `a—b`: Δ = (0.7, 0.6) → δ∞ = 0.7, δ2 ≈ 0.92, δ1 = 1.3 (edge under
///   L∞/L2 only);
/// * `b—c`: Δ = (0.95, 0.95) → δ∞ = 0.95, δ2 ≈ 1.34, δ1 = 1.9 (edge under
///   L∞ only).
fn metric_fixture_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (0.0, 0.0), (0.7, 0.6), (1.65, -0.35)")
        .unwrap();
    db
}

/// Sorted per-group counts of a similarity query under `metric_kw`.
fn group_counts(db: &Database, head: &str, metric_kw: &str, tail: &str) -> Vec<i64> {
    let sql = format!("SELECT count(*) FROM pts GROUP BY x, y {head} {metric_kw} WITHIN 1 {tail}");
    let out = db.query(&sql).unwrap();
    let mut counts: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    counts.sort_unstable();
    counts
}

#[test]
fn three_metrics_three_groupings_distance_to_any() {
    // Guards against silent keyword aliasing: if any two of LONE/LTWO/LINF
    // planned the same metric, two of these groupings would coincide.
    let db = metric_fixture_db();
    assert_eq!(group_counts(&db, "DISTANCE-TO-ANY", "LINF", ""), vec![3]);
    assert_eq!(group_counts(&db, "DISTANCE-TO-ANY", "LTWO", ""), vec![1, 2]);
    assert_eq!(
        group_counts(&db, "DISTANCE-TO-ANY", "LONE", ""),
        vec![1, 1, 1]
    );
    // Canonical spellings plan identically to the Table 2 prose variants.
    assert_eq!(
        group_counts(&db, "DISTANCE-TO-ANY", "L1", ""),
        group_counts(&db, "DISTANCE-TO-ANY", "LONE", "")
    );
    assert_eq!(
        group_counts(&db, "DISTANCE-TO-ANY", "L2", ""),
        group_counts(&db, "DISTANCE-TO-ANY", "LTWO", "")
    );
}

#[test]
fn three_metrics_three_groupings_distance_to_all() {
    // Under ELIMINATE: L∞ forms {a,b}, then c (close to b, far from a)
    // makes it an overlap group and b is eliminated → [1, 1]. L2 forms
    // {a,b} and c stays an untouched singleton → [2, 1]. L1 has no edge at
    // all → [1, 1, 1]. Three metrics, three distinct groupings.
    let db = metric_fixture_db();
    let tail = "ON-OVERLAP ELIMINATE";
    assert_eq!(
        group_counts(&db, "DISTANCE-TO-ALL", "LINF", tail),
        vec![1, 1]
    );
    assert_eq!(
        group_counts(&db, "DISTANCE-TO-ALL", "LTWO", tail),
        vec![1, 2]
    );
    assert_eq!(
        group_counts(&db, "DISTANCE-TO-ALL", "LONE", tail),
        vec![1, 1, 1]
    );
}

#[test]
fn explain_prints_the_true_metric_for_lone() {
    let db = metric_fixture_db();
    let plan = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL LONE WITHIN 1")
        .unwrap();
    assert!(plan.contains("SGB-All L1 WITHIN 1"), "plan:\n{plan}");
    let plan = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY WITHIN 1 USING lone")
        .unwrap();
    assert!(plan.contains("SGB-Any L1 WITHIN 1"), "plan:\n{plan}");
}

#[test]
fn unknown_metric_keyword_fails_loudly_through_the_engine() {
    let db = metric_fixture_db();
    let err = db
        .query("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY MINKOWSKI3 WITHIN 1")
        .unwrap_err();
    let msg = err.to_string();
    for kw in ["L1", "LONE", "L2", "LTWO", "LINF"] {
        assert!(msg.contains(kw), "error must name {kw}: {msg}");
    }
}

#[test]
fn explain_shows_similarity_operator_above_join() {
    let db = small_db();
    let plan = db
        .explain(
            "SELECT count(*) FROM customer, orders WHERE c_custkey = o_custkey \
             GROUP BY c_acctbal, o_totalprice DISTANCE-TO-ALL L2 WITHIN 0.5 \
             ON-OVERLAP FORM-NEW-GROUP",
        )
        .unwrap();
    let sgb_pos = plan.find("SimilarityGroupBy").expect("SGB node");
    let join_pos = plan.find("HashJoin").expect("join node");
    assert!(sgb_pos < join_pos, "SGB consumes the join output:\n{plan}");
    assert!(plan.contains("ON-OVERLAP FORM-NEW-GROUP"));
}
