//! Property tests for the incremental maintenance engine: over random
//! insert/delete edit scripts, a [`MaintainedGrouping`] must stay equal —
//! full `Grouping` equality (groups, eliminated, outliers), not just group
//! counts — to a from-scratch `SgbQuery::run` over the live points, for
//! all three operator families × all three metrics. A multi-threaded
//! smoke test then pins the relation layer's serving contract: concurrent
//! readers of a subscription only ever observe complete, epoch-monotone
//! snapshots while a writer streams INSERT / DELETE statements.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::incremental::MaintainedGrouping;
use sgb::core::{OverlapAction, SgbQuery};
use sgb::geom::{Metric, Point};
use sgb::relation::Database;

/// One step of a random edit script. `Delete` carries a raw index that is
/// reduced modulo the current slot count, so scripts stay valid however
/// many inserts precede them — and sometimes hit an already-deleted slot,
/// which must be a reported no-op.
#[derive(Clone, Debug)]
enum Edit {
    Insert(f64, f64),
    Delete(usize),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Edit::Insert(x, y)),
        (0usize..64).prop_map(Edit::Delete),
    ]
}

fn metric(i: usize) -> Metric {
    [Metric::L1, Metric::L2, Metric::LInf][i]
}

/// A random query of each family. SGB-All includes the overlap action and
/// seed in the mix — the maintained state must reproduce the exact
/// arrival-order-sensitive result of a from-scratch run.
fn eps() -> impl Strategy<Value = f64> {
    (1u32..6).prop_map(|k| f64::from(k) * 0.5)
}

fn arb_query() -> impl Strategy<Value = SgbQuery<2>> {
    prop_oneof![
        (eps(), 0usize..3).prop_map(|(e, m)| SgbQuery::any(e).metric(metric(m))),
        (eps(), 0usize..3, 0usize..3, 0u64..4).prop_map(|(e, m, o, s)| {
            let overlap = [
                OverlapAction::JoinAny,
                OverlapAction::Eliminate,
                OverlapAction::FormNewGroup,
            ][o];
            SgbQuery::all(e).metric(metric(m)).overlap(overlap).seed(s)
        }),
        (eps(), 0usize..3).prop_map(|(e, m)| {
            SgbQuery::around(vec![
                Point::new([1.0, 1.0]),
                Point::new([5.0, 5.0]),
                Point::new([2.5, 6.0]),
            ])
            .max_radius(e)
            .metric(metric(m))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After **every** edit of a random script, the maintained grouping
    /// equals the from-scratch recompute over the live points — for
    /// SGB-All (every overlap action), SGB-Any, and SGB-Around under
    /// L1 / L2 / L∞.
    #[test]
    fn incremental_equals_recompute_after_every_edit(
        query in arb_query(),
        initial in vec((0.0f64..8.0, 0.0f64..8.0), 0..12),
        edits in vec(arb_edit(), 1..16),
    ) {
        let points: Vec<Point<2>> =
            initial.iter().map(|&(x, y)| Point::new([x, y])).collect();
        let mut maintained = MaintainedGrouping::new(query.clone(), &points);
        // Mirror of the slot table: `None` once deleted, never shrinks.
        let mut mirror: Vec<Option<Point<2>>> =
            points.into_iter().map(Some).collect();
        for edit in edits {
            match edit {
                Edit::Insert(x, y) => {
                    let slot = maintained.insert(Point::new([x, y]));
                    prop_assert_eq!(slot, mirror.len(), "slots are append-only");
                    mirror.push(Some(Point::new([x, y])));
                }
                Edit::Delete(raw) => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let slot = raw % mirror.len();
                    let was_live = mirror[slot].is_some();
                    prop_assert_eq!(maintained.delete(slot), was_live);
                    mirror[slot] = None;
                }
            }
            let live: Vec<Point<2>> = mirror.iter().flatten().copied().collect();
            prop_assert_eq!(maintained.live_points(), live.clone());
            prop_assert_eq!(maintained.len(), live.len());
            let incremental = maintained.snapshot();
            let scratch = query.run(&live);
            prop_assert_eq!(
                &incremental, &scratch,
                "maintained grouping diverged from recompute after {} edits",
                maintained.epoch()
            );
            incremental.check_partition(live.len());
        }
        // Deleting past the slot table is a reported no-op.
        prop_assert!(!maintained.delete(mirror.len()));
    }
}

/// Concurrent snapshot serving: readers holding a [`SubscriptionHandle`]
/// clone never block the writer and only ever observe *complete* published
/// snapshots. The writer's script is deterministic — every point is far
/// from every other under ε = 1, so the grouping at epoch `e` is exactly
/// `expected[e]` singletons — which lets each reader verify any snapshot
/// it happens to catch, at any interleaving, without synchronising with
/// the writer.
#[test]
fn concurrent_readers_observe_only_complete_snapshots() {
    const INSERTS: usize = 24;
    const DELETES: usize = 8;

    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (0.0, 0.0), (10.0, 0.0), (20.0, 0.0)")
        .unwrap();
    let sub = db
        .subscribe("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap();

    // Group count per epoch: 3 initial singletons, one more per insert,
    // one fewer per delete.
    let mut expected = vec![3usize];
    for i in 0..INSERTS {
        expected.push(3 + i + 1);
    }
    for j in 0..DELETES {
        expected.push(3 + INSERTS - (j + 1));
    }
    let final_epoch = (INSERTS + DELETES) as u64;

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let handle = sub.clone();
            let expected = &expected;
            scope.spawn(move || {
                let mut last = 0u64;
                loop {
                    let snap = handle.snapshot();
                    let epoch = snap.epoch();
                    assert!(epoch >= last, "epochs went backwards: {last} -> {epoch}");
                    last = epoch;
                    let g = snap.grouping();
                    let want = expected[usize::try_from(epoch).unwrap()];
                    assert_eq!(
                        g.num_groups(),
                        want,
                        "snapshot at epoch {epoch} is not the published grouping"
                    );
                    assert!(g.sizes().iter().all(|&s| s == 1), "all groups singleton");
                    g.check_partition(want);
                    if epoch == final_epoch {
                        return;
                    }
                    std::thread::yield_now();
                }
            });
        }

        // The writer never waits for readers: publishing swaps an Arc
        // under a write lock held only for the pointer swap.
        for i in 0..INSERTS {
            let x = 10.0 * (i + 3) as f64;
            db.execute(&format!("INSERT INTO pts VALUES ({x}, 0.0)"))
                .unwrap();
        }
        for j in 0..DELETES {
            let x = 10.0 * (INSERTS + 2 - j) as f64;
            db.execute(&format!("DELETE FROM pts WHERE x = {x}"))
                .unwrap();
        }
    });

    assert_eq!(sub.snapshot().epoch(), final_epoch);
    assert_eq!(
        sub.snapshot().grouping().num_groups(),
        3 + INSERTS - DELETES
    );
}
