//! Property tests for the incremental maintenance engine: over random
//! insert/delete edit scripts, a [`MaintainedGrouping`] must stay equal —
//! full `Grouping` equality (groups, eliminated, outliers), not just group
//! counts — to a from-scratch `SgbQuery::run` over the live points, for
//! all three operator families × all three metrics. A multi-threaded
//! smoke test then pins the relation layer's serving contract: concurrent
//! readers of a subscription only ever observe complete, epoch-monotone
//! snapshots while a writer streams INSERT / DELETE statements.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::incremental::MaintainedGrouping;
use sgb::core::{OverlapAction, SgbQuery};
use sgb::geom::{Metric, Point};
use sgb::relation::Database;

/// One step of a random edit script. `Delete` carries a raw index that is
/// reduced modulo the current slot count, so scripts stay valid however
/// many inserts precede them — and sometimes hit an already-deleted slot,
/// which must be a reported no-op.
#[derive(Clone, Debug)]
enum Edit {
    Insert(f64, f64),
    Delete(usize),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Edit::Insert(x, y)),
        (0usize..64).prop_map(Edit::Delete),
    ]
}

fn metric(i: usize) -> Metric {
    [Metric::L1, Metric::L2, Metric::LInf][i]
}

/// A random query of each family. SGB-All includes the overlap action and
/// seed in the mix — the maintained state must reproduce the exact
/// arrival-order-sensitive result of a from-scratch run.
fn eps() -> impl Strategy<Value = f64> {
    (1u32..6).prop_map(|k| f64::from(k) * 0.5)
}

fn arb_query() -> impl Strategy<Value = SgbQuery<2>> {
    prop_oneof![
        (eps(), 0usize..3).prop_map(|(e, m)| SgbQuery::any(e).metric(metric(m))),
        (eps(), 0usize..3, 0usize..3, 0u64..4).prop_map(|(e, m, o, s)| {
            let overlap = [
                OverlapAction::JoinAny,
                OverlapAction::Eliminate,
                OverlapAction::FormNewGroup,
            ][o];
            SgbQuery::all(e).metric(metric(m)).overlap(overlap).seed(s)
        }),
        (eps(), 0usize..3).prop_map(|(e, m)| {
            SgbQuery::around(vec![
                Point::new([1.0, 1.0]),
                Point::new([5.0, 5.0]),
                Point::new([2.5, 6.0]),
            ])
            .max_radius(e)
            .metric(metric(m))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After **every** edit of a random script, the maintained grouping
    /// equals the from-scratch recompute over the live points — for
    /// SGB-All (every overlap action), SGB-Any, and SGB-Around under
    /// L1 / L2 / L∞.
    #[test]
    fn incremental_equals_recompute_after_every_edit(
        query in arb_query(),
        initial in vec((0.0f64..8.0, 0.0f64..8.0), 0..12),
        edits in vec(arb_edit(), 1..16),
    ) {
        let points: Vec<Point<2>> =
            initial.iter().map(|&(x, y)| Point::new([x, y])).collect();
        let mut maintained = MaintainedGrouping::new(query.clone(), &points);
        // Mirror of the slot table: `None` once deleted, never shrinks.
        let mut mirror: Vec<Option<Point<2>>> =
            points.into_iter().map(Some).collect();
        for edit in edits {
            match edit {
                Edit::Insert(x, y) => {
                    let slot = maintained.insert(Point::new([x, y]));
                    prop_assert_eq!(slot, mirror.len(), "slots are append-only");
                    mirror.push(Some(Point::new([x, y])));
                }
                Edit::Delete(raw) => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let slot = raw % mirror.len();
                    let was_live = mirror[slot].is_some();
                    prop_assert_eq!(maintained.delete(slot), was_live);
                    mirror[slot] = None;
                }
            }
            let live: Vec<Point<2>> = mirror.iter().flatten().copied().collect();
            prop_assert_eq!(maintained.live_points(), live.clone());
            prop_assert_eq!(maintained.len(), live.len());
            let incremental = maintained.snapshot();
            let scratch = query.run(&live);
            prop_assert_eq!(
                &incremental, &scratch,
                "maintained grouping diverged from recompute after {} edits",
                maintained.epoch()
            );
            incremental.check_partition(live.len());
        }
        // Deleting past the slot table is a reported no-op.
        prop_assert!(!maintained.delete(mirror.len()));
    }
}

/// Concurrent snapshot serving: readers holding a [`SubscriptionHandle`]
/// clone never block the writer and only ever observe *complete* published
/// snapshots. The writer's script is deterministic — every point is far
/// from every other under ε = 1, so the grouping at epoch `e` is exactly
/// `expected[e]` singletons — which lets each reader verify any snapshot
/// it happens to catch, at any interleaving, without synchronising with
/// the writer.
#[test]
fn concurrent_readers_observe_only_complete_snapshots() {
    const INSERTS: usize = 24;
    const DELETES: usize = 8;

    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (0.0, 0.0), (10.0, 0.0), (20.0, 0.0)")
        .unwrap();
    let sub = db
        .subscribe("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap();

    // Group count per epoch: 3 initial singletons, one more per insert,
    // one fewer per delete.
    let mut expected = vec![3usize];
    for i in 0..INSERTS {
        expected.push(3 + i + 1);
    }
    for j in 0..DELETES {
        expected.push(3 + INSERTS - (j + 1));
    }
    let final_epoch = (INSERTS + DELETES) as u64;

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let handle = sub.clone();
            let expected = &expected;
            scope.spawn(move || {
                let mut last = 0u64;
                loop {
                    let snap = handle.snapshot();
                    let epoch = snap.epoch();
                    assert!(epoch >= last, "epochs went backwards: {last} -> {epoch}");
                    last = epoch;
                    let g = snap.grouping();
                    let want = expected[usize::try_from(epoch).unwrap()];
                    assert_eq!(
                        g.num_groups(),
                        want,
                        "snapshot at epoch {epoch} is not the published grouping"
                    );
                    assert!(g.sizes().iter().all(|&s| s == 1), "all groups singleton");
                    g.check_partition(want);
                    if epoch == final_epoch {
                        return;
                    }
                    std::thread::yield_now();
                }
            });
        }

        // The writer never waits for readers: publishing swaps an Arc
        // under a write lock held only for the pointer swap.
        for i in 0..INSERTS {
            let x = 10.0 * (i + 3) as f64;
            db.execute(&format!("INSERT INTO pts VALUES ({x}, 0.0)"))
                .unwrap();
        }
        for j in 0..DELETES {
            let x = 10.0 * (INSERTS + 2 - j) as f64;
            db.execute(&format!("DELETE FROM pts WHERE x = {x}"))
                .unwrap();
        }
    });

    assert_eq!(sub.snapshot().epoch(), final_epoch);
    assert_eq!(
        sub.snapshot().grouping().num_groups(),
        3 + INSERTS - DELETES
    );
}

/// One statement of a random SQL edit script. `Update` replays the
/// engine's documented semantics in the test's row mirror: the touched
/// rows are deleted in place and their rewrites appended at the end of
/// the table (UPDATE executes as a delete+insert pair), with every
/// right-hand side reading the *old* row.
#[derive(Clone, Debug)]
enum SqlEdit {
    Insert(f64, f64),
    Delete(f64),
    Update(f64, f64),
}

fn arb_sql_edit() -> impl Strategy<Value = SqlEdit> {
    prop_oneof![
        (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| SqlEdit::Insert(x, y)),
        (0.0f64..8.0).prop_map(SqlEdit::Delete),
        (0.0f64..8.0, -2.0f64..2.0).prop_map(|(cut, shift)| SqlEdit::Update(cut, shift)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SQL edit scripts with UPDATE in the mix: after **every** statement
    /// the subscription's published snapshot equals a from-scratch run
    /// over a row mirror that replays the engine's UPDATE-as-
    /// delete+insert ordering, and the published epoch never moves
    /// backwards.
    #[test]
    fn subscription_tracks_sql_edit_scripts_with_update(
        initial in vec((0.0f64..8.0, 0.0f64..8.0), 0..10),
        script in vec(arb_sql_edit(), 1..16),
        eps_k in 1u32..6,
        metric_i in 0usize..3,
    ) {
        let eps = f64::from(eps_k) * 0.5;
        let name = ["L1", "L2", "LINF"][metric_i];
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x DOUBLE, y DOUBLE)").unwrap();
        let mut mirror: Vec<(f64, f64)> = Vec::new();
        for &(x, y) in &initial {
            db.execute(&format!("INSERT INTO t VALUES ({x}, {y})")).unwrap();
            mirror.push((x, y));
        }
        let sub = db
            .subscribe(&format!(
                "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY {name} WITHIN {eps}"
            ))
            .unwrap();
        let query = SgbQuery::any(eps).metric(metric(metric_i));
        let mut last_epoch = sub.snapshot().epoch();
        for edit in script {
            match edit {
                SqlEdit::Insert(x, y) => {
                    db.execute(&format!("INSERT INTO t VALUES ({x}, {y})")).unwrap();
                    mirror.push((x, y));
                }
                SqlEdit::Delete(cut) => {
                    db.execute(&format!("DELETE FROM t WHERE x > {cut}")).unwrap();
                    mirror.retain(|&(x, _)| x <= cut);
                }
                SqlEdit::Update(cut, shift) => {
                    db.execute(&format!(
                        "UPDATE t SET x = x + {shift} WHERE x < {cut}"
                    ))
                    .unwrap();
                    let touched: Vec<(f64, f64)> = mirror
                        .iter()
                        .filter(|&&(x, _)| x < cut)
                        .map(|&(x, y)| (x + shift, y))
                        .collect();
                    mirror.retain(|&(x, _)| x >= cut);
                    mirror.extend(touched);
                }
            }
            let live: Vec<Point<2>> =
                mirror.iter().map(|&(x, y)| Point::new([x, y])).collect();
            let snap = sub.snapshot();
            prop_assert!(sub.is_active());
            prop_assert!(snap.epoch() >= last_epoch, "epoch went backwards");
            last_epoch = snap.epoch();
            prop_assert_eq!(
                snap.grouping(),
                &query.run(&live),
                "subscription diverged from recompute over the mirror"
            );
        }
    }
}
