//! Property-based tests of the SGB-Around operator: the defining
//! invariants the ISSUE names — order independence of the grouping,
//! equivalence of both execution paths to a brute-force nearest-center
//! reference under all three metrics (including radius-bounded/outlier
//! cases), and deterministic lowest-center-index tie-breaking — plus the
//! SQL path agreeing with the core operator.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::{sgb_around, AroundAlgorithm, SgbAroundConfig};
use sgb::geom::{Metric, Point};
use sgb::relation::{Database, Schema, Table, Value};

fn arb_point() -> impl Strategy<Value = Point<2>> {
    (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Point::new([x, y]))
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![Just(Metric::L1), Just(Metric::L2), Just(Metric::LInf)]
}

/// Distinct centers (the SQL surface rejects duplicates; the reference and
/// the operator agree on them anyway, but distinctness keeps the strategy
/// honest about the supported surface).
fn arb_centers() -> impl Strategy<Value = Vec<Point<2>>> {
    vec(arb_point(), 1..12).prop_map(|mut cs| {
        cs.sort_by(|a, b| {
            a.coords()
                .partial_cmp(b.coords())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        cs.dedup();
        cs
    })
}

/// Independent reference: argmin over canonical metric distances with
/// lowest-index ties, then the canonical radius predicate.
fn reference_assignment(
    points: &[Point<2>],
    centers: &[Point<2>],
    metric: Metric,
    radius: Option<f64>,
) -> Vec<Option<usize>> {
    points
        .iter()
        .map(|p| {
            let mut best = (f64::INFINITY, 0usize);
            for (c, q) in centers.iter().enumerate() {
                let d = metric.distance(p, q);
                if d < best.0 {
                    best = (d, c);
                }
            }
            match radius {
                Some(r) if !metric.within(p, &centers[best.1], r) => None,
                _ => Some(best.1),
            }
        })
        .collect()
}

/// A deterministic permutation of `0..n` derived from `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) as usize) % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both execution paths equal the brute-force nearest-center reference
    /// under every metric, with and without a radius bound.
    #[test]
    fn around_matches_reference_assignment(
        points in vec(arb_point(), 0..120),
        centers in arb_centers(),
        metric in arb_metric(),
        radius in prop_oneof![Just(None), (0.0f64..4.0).prop_map(Some)],
    ) {
        let expected = reference_assignment(&points, &centers, metric, radius);
        for algorithm in [AroundAlgorithm::BruteForce, AroundAlgorithm::Indexed] {
            let mut cfg = SgbAroundConfig::new(centers.clone())
                .metric(metric)
                .algorithm(algorithm);
            if let Some(r) = radius {
                cfg = cfg.max_radius(r);
            }
            let out = sgb_around(&points, &cfg);
            out.check_partition(points.len());
            prop_assert_eq!(
                out.assignment(points.len()),
                expected.clone(),
                "{:?} {} radius {:?}",
                algorithm, metric, radius
            );
        }
    }

    /// Row-permutation invariance: shuffling the input never changes any
    /// record's assigned center (the grouping is order-independent as a
    /// function of the record, not just as a set of sets).
    #[test]
    fn around_is_order_independent(
        points in vec(arb_point(), 1..100),
        centers in arb_centers(),
        metric in arb_metric(),
        radius in prop_oneof![Just(None), (0.0f64..4.0).prop_map(Some)],
        perm_seed in any::<u64>(),
    ) {
        let mut cfg = SgbAroundConfig::new(centers).metric(metric);
        if let Some(r) = radius {
            cfg = cfg.max_radius(r);
        }
        let base = sgb_around(&points, &cfg).assignment(points.len());
        let perm = permutation(points.len(), perm_seed);
        let shuffled: Vec<Point<2>> = perm.iter().map(|&i| points[i]).collect();
        let out = sgb_around(&shuffled, &cfg).assignment(points.len());
        for (pos, &orig) in perm.iter().enumerate() {
            prop_assert_eq!(out[pos], base[orig], "record {} moved centers", orig);
        }
    }

    /// Exact ties always resolve to the lowest center index, on both paths:
    /// duplicating every center must leave the assignment unchanged (the
    /// copies, at strictly higher indices, never win).
    #[test]
    fn around_ties_break_to_lowest_index(
        points in vec(arb_point(), 1..80),
        centers in arb_centers(),
        metric in arb_metric(),
    ) {
        let k = centers.len();
        let mut doubled = centers.clone();
        doubled.extend(centers.iter().copied());
        for algorithm in [AroundAlgorithm::BruteForce, AroundAlgorithm::Indexed] {
            let base = sgb_around(
                &points,
                &SgbAroundConfig::new(centers.clone()).metric(metric).algorithm(algorithm),
            );
            let dup = sgb_around(
                &points,
                &SgbAroundConfig::new(doubled.clone()).metric(metric).algorithm(algorithm),
            );
            prop_assert_eq!(
                &dup.groups[..k],
                &base.groups[..],
                "{:?} {}: a duplicate center won a tie", algorithm, metric
            );
            prop_assert!(
                dup.groups[k..].iter().all(Vec::is_empty),
                "{:?} {}: high-index duplicates must stay empty", algorithm, metric
            );
        }
    }

    /// The SQL path produces the same group sizes as the core operator.
    #[test]
    fn sql_around_matches_core_operator(
        rows in vec((0.0f64..8.0, 0.0f64..8.0), 0..60),
        centers in arb_centers(),
        radius in prop_oneof![Just(None), (0.5f64..4.0).prop_map(Some)],
    ) {
        let mut table = Table::empty(Schema::new(["x", "y"]));
        for (x, y) in &rows {
            table.push(vec![Value::Float(*x), Value::Float(*y)]).unwrap();
        }
        let mut db = Database::new();
        db.register("t", table);
        let center_list = centers
            .iter()
            .map(|c| format!("({:?}, {:?})", c.x(), c.y()))
            .collect::<Vec<_>>()
            .join(", ");
        let bound = radius.map(|r| format!(" WITHIN {r:?}")).unwrap_or_default();
        let sql = format!(
            "SELECT count(*) FROM t GROUP BY x, y AROUND ({center_list}) L2{bound}"
        );
        let out = db.query(&sql).unwrap();
        let points: Vec<Point<2>> = rows.iter().map(|&(x, y)| Point::new([x, y])).collect();
        let mut cfg = SgbAroundConfig::new(centers);
        if let Some(r) = radius {
            cfg = cfg.max_radius(r);
        }
        let expected = sgb_around(&points, &cfg).grouping();
        let mut sql_sizes: Vec<i64> = out
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Int(n) => *n,
                other => panic!("count(*) must be an int, got {other}"),
            })
            .collect();
        sql_sizes.sort_unstable();
        let mut core_sizes: Vec<i64> = expected.sizes().iter().map(|&s| s as i64).collect();
        core_sizes.sort_unstable();
        prop_assert_eq!(sql_sizes, core_sizes, "query: {}", sql);
    }
}
