//! Property-based tests of the core invariants, with `proptest`.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::{
    sgb_all, sgb_any, AllAlgorithm, AnyAlgorithm, OverlapAction, SgbAllConfig, SgbAnyConfig,
};
use sgb::dsu::DisjointSet;
use sgb::geom::{ConvexHull, Metric, Point, Rect};
use sgb::spatial::RTree;

fn arb_point() -> impl Strategy<Value = Point<2>> {
    (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Point::new([x, y]))
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![Just(Metric::L1), Just(Metric::L2), Just(Metric::LInf)]
}

fn arb_overlap() -> impl Strategy<Value = OverlapAction> {
    prop_oneof![
        Just(OverlapAction::JoinAny),
        Just(OverlapAction::Eliminate),
        Just(OverlapAction::FormNewGroup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every SGB-All output group is an ε-clique under the configured
    /// metric (Section 4.1's defining property), for all algorithms and
    /// overlap semantics, and the output partitions the input.
    #[test]
    fn sgb_all_groups_are_cliques(
        points in vec(arb_point(), 1..120),
        eps in 0.05f64..2.0,
        metric in arb_metric(),
        overlap in arb_overlap(),
    ) {
        for algorithm in [AllAlgorithm::AllPairs, AllAlgorithm::BoundsChecking, AllAlgorithm::Indexed] {
            let cfg = SgbAllConfig::new(eps)
                .metric(metric)
                .overlap(overlap)
                .algorithm(algorithm)
                .seed(7);
            let out = sgb_all(&points, &cfg);
            out.check_partition(points.len());
            for g in &out.groups {
                for i in 0..g.len() {
                    for j in (i + 1)..g.len() {
                        prop_assert!(
                            metric.within(&points[g[i]], &points[g[j]], eps),
                            "{algorithm:?}: {:?} and {:?} exceed eps {eps}",
                            points[g[i]], points[g[j]]
                        );
                    }
                }
            }
        }
    }

    /// The three SGB-All algorithms are observationally identical.
    #[test]
    fn sgb_all_algorithms_equivalent(
        points in vec(arb_point(), 1..100),
        eps in 0.05f64..2.0,
        metric in arb_metric(),
        overlap in arb_overlap(),
    ) {
        let runs: Vec<_> = [AllAlgorithm::AllPairs, AllAlgorithm::BoundsChecking, AllAlgorithm::Indexed]
            .iter()
            .map(|&algorithm| {
                sgb_all(
                    &points,
                    &SgbAllConfig::new(eps).metric(metric).overlap(overlap).algorithm(algorithm).seed(3),
                )
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }

    /// SGB-Any equals the connected components of the ε-threshold graph
    /// (Section 4.2's defining property), via a brute-force reference.
    #[test]
    fn sgb_any_is_connected_components(
        points in vec(arb_point(), 0..120),
        eps in 0.05f64..2.0,
        metric in arb_metric(),
    ) {
        let mut reference = DisjointSet::with_len(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if metric.within(&points[i], &points[j], eps) {
                    reference.union(i, j);
                }
            }
        }
        let expected = reference.into_groups();
        for algorithm in [AnyAlgorithm::AllPairs, AnyAlgorithm::Indexed] {
            let out = sgb_any(
                &points,
                &SgbAnyConfig::new(eps).metric(metric).algorithm(algorithm),
            );
            prop_assert_eq!(&out.groups, &expected, "{:?}", algorithm);
        }
    }

    /// SGB-All groups refine SGB-Any components: every clique lies inside
    /// one component.
    #[test]
    fn cliques_refine_components(
        points in vec(arb_point(), 1..100),
        eps in 0.05f64..2.0,
        metric in arb_metric(),
    ) {
        let any = sgb_any(&points, &SgbAnyConfig::new(eps).metric(metric));
        let comp = any.assignment(points.len());
        let all = sgb_all(&points, &SgbAllConfig::new(eps).metric(metric));
        for g in &all.groups {
            let c = comp[g[0]];
            prop_assert!(g.iter().all(|&r| comp[r] == c));
        }
    }

    /// ELIMINATE drops exactly the records that JOIN-ANY would have had to
    /// arbitrate... at minimum, every dropped record plus every group
    /// member accounts for the whole input.
    #[test]
    fn eliminate_partitions_input(
        points in vec(arb_point(), 0..120),
        eps in 0.05f64..2.0,
    ) {
        let out = sgb_all(
            &points,
            &SgbAllConfig::new(eps).overlap(OverlapAction::Eliminate),
        );
        out.check_partition(points.len());
        prop_assert_eq!(out.grouped_records() + out.eliminated.len(), points.len());
    }

    /// R-tree window queries agree with a linear scan, after interleaved
    /// inserts and deletes.
    #[test]
    fn rtree_window_equals_linear_scan(
        points in vec(arb_point(), 1..150),
        deletions in vec(any::<prop::sample::Index>(), 0..40),
        window in (0.0f64..8.0, 0.0f64..8.0, 0.1f64..4.0),
    ) {
        let mut tree: RTree<2, usize> = RTree::with_max_entries(6);
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(*p, i);
        }
        let mut live: Vec<bool> = vec![true; points.len()];
        for d in &deletions {
            let victim = d.index(points.len());
            if live[victim] {
                prop_assert!(tree.remove(&Rect::point(points[victim]), &victim));
                live[victim] = false;
            }
        }
        tree.check_invariants();
        let w = Rect::centered(Point::new([window.0, window.1]), window.2);
        let mut hits = tree.query_collect(&w);
        hits.sort_unstable();
        let mut expected: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(i, p)| live[*i] && w.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(hits, expected);
    }

    /// R-tree kNN distances agree with brute force.
    #[test]
    fn rtree_knn_equals_brute_force(
        points in vec(arb_point(), 1..120),
        query in arb_point(),
        k in 1usize..12,
        metric in arb_metric(),
    ) {
        let mut tree: RTree<2, usize> = RTree::new();
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(*p, i);
        }
        let got = tree.nearest(&query, k, metric);
        let mut brute: Vec<f64> = points.iter().map(|p| metric.distance(p, &query)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got.len(), k.min(points.len()));
        for (i, (d, _)) in got.iter().enumerate() {
            prop_assert!((d - brute[i]).abs() < 1e-9);
        }
    }

    /// Convex hull: contains all input points; hull of hull is idempotent;
    /// the admit test equals the all-members check.
    #[test]
    fn hull_properties(points in vec(arb_point(), 1..80), probe in arb_point(), eps in 0.1f64..3.0) {
        let hull = ConvexHull::build(&points);
        for p in &points {
            prop_assert!(hull.contains(p), "hull must contain input {p:?}");
        }
        let again = ConvexHull::build(hull.vertices());
        prop_assert_eq!(hull.vertices().len(), again.vertices().len());
        // Exactness of the refinement used by SGB-All under L2 — valid
        // whenever the member set is a legal clique (diameter ≤ ε).
        let diameter = hull.diameter(Metric::L2);
        if diameter <= eps {
            let truth = points.iter().all(|m| Metric::L2.within(m, &probe, eps));
            prop_assert_eq!(hull.admits(&probe, eps, Metric::L2), truth);
        }
    }

    /// The ε-All region invariants of Definition 5 (exact for L∞,
    /// conservative for L2).
    #[test]
    fn eps_region_invariants(
        members in vec(arb_point(), 1..40),
        probe in arb_point(),
        eps in 0.1f64..3.0,
    ) {
        let mut region = sgb::geom::EpsAllRegion::new(eps);
        for m in &members {
            region.insert(m);
        }
        let inside = region.point_in_region(&probe);
        let linf_all = members.iter().all(|m| Metric::LInf.within(m, &probe, eps));
        prop_assert_eq!(inside, linf_all, "L-inf region must be exact");
        for metric in [Metric::L1, Metric::L2] {
            let all_close = members.iter().all(|m| metric.within(m, &probe, eps));
            if all_close {
                prop_assert!(inside, "{} region must be conservative", metric);
            }
        }
        // Reach region: outside it, no member is within ε.
        if !region.may_overlap(&probe) {
            prop_assert!(members.iter().all(|m| !Metric::LInf.within(m, &probe, eps)));
        }
    }

    /// Metric axioms hold for every supported metric: non-negativity,
    /// identity, symmetry (bit-exact), and the triangle inequality.
    #[test]
    fn metric_axioms(a in arb_point(), b in arb_point(), c in arb_point()) {
        for metric in Metric::ALL {
            let dab = metric.distance(&a, &b);
            prop_assert!(dab >= 0.0, "{}", metric);
            prop_assert_eq!(metric.distance(&a, &a), 0.0, "{}", metric);
            prop_assert_eq!(dab, metric.distance(&b, &a), "{}", metric);
            let through_c = metric.distance(&a, &c) + metric.distance(&c, &b);
            prop_assert!(dab <= through_c + 1e-9, "{}: {dab} > {through_c}", metric);
        }
    }

    /// The Minkowski-norm sandwich `δ∞ ≤ δ2 ≤ δ1 ≤ D·δ∞` on random points
    /// (D = 2 here) — the inclusion chain square ⊇ disc ⊇ diamond that
    /// makes the rectangle filter conservative for L1/L2.
    #[test]
    fn norm_ordering(a in arb_point(), b in arb_point()) {
        let l1 = Metric::L1.distance(&a, &b);
        let l2 = Metric::L2.distance(&a, &b);
        let linf = Metric::LInf.distance(&a, &b);
        prop_assert!(linf <= l2 + 1e-12);
        prop_assert!(l2 <= l1 + 1e-12);
        prop_assert!(l1 <= 2.0 * linf + 1e-9);
    }

    /// Under `Metric::L1`, every SGB-All algorithm variant matches the
    /// all-pairs brute force and every SGB-Any variant matches the
    /// connected components of the L1 ε-graph (acceptance criterion of the
    /// L1 promotion: no neighbouring-norm approximation anywhere).
    #[test]
    fn l1_variants_match_brute_force(
        points in vec(arb_point(), 1..100),
        eps in 0.05f64..2.0,
        overlap in arb_overlap(),
    ) {
        let reference = sgb_all(
            &points,
            &SgbAllConfig::new(eps)
                .metric(Metric::L1)
                .overlap(overlap)
                .algorithm(AllAlgorithm::AllPairs)
                .seed(13),
        );
        for algorithm in [AllAlgorithm::BoundsChecking, AllAlgorithm::Indexed] {
            let got = sgb_all(
                &points,
                &SgbAllConfig::new(eps)
                    .metric(Metric::L1)
                    .overlap(overlap)
                    .algorithm(algorithm)
                    .seed(13),
            );
            prop_assert_eq!(&got, &reference, "{:?}", algorithm);
        }
        let mut dsu = DisjointSet::with_len(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if Metric::L1.within(&points[i], &points[j], eps) {
                    dsu.union(i, j);
                }
            }
        }
        let components = dsu.into_groups();
        for algorithm in [AnyAlgorithm::AllPairs, AnyAlgorithm::Indexed] {
            let got = sgb_any(
                &points,
                &SgbAnyConfig::new(eps).metric(Metric::L1).algorithm(algorithm),
            );
            prop_assert_eq!(&got.groups, &components, "{:?}", algorithm);
        }
    }

    /// DSU connectivity equals naive label propagation.
    #[test]
    fn dsu_equals_labels(unions in vec((0usize..50, 0usize..50), 0..120)) {
        let mut dsu = DisjointSet::with_len(50);
        let mut labels: Vec<usize> = (0..50).collect();
        for &(a, b) in &unions {
            dsu.union(a, b);
            let (la, lb) = (labels[a], labels[b]);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for a in 0..50 {
            for b in 0..50 {
                prop_assert_eq!(dsu.connected(a, b), labels[a] == labels[b]);
            }
        }
    }
}
