//! Property-based tests of the parallel execution engine: for every
//! operator, metric, algorithm, and worker count, the parallel paths must
//! be **bit-identical** to their sequential twins — same groups in the
//! same order with the same members, same eliminated set, same outliers.
//! Thread count is an execution detail the cost model may tune freely;
//! these properties are what make that safe (and what the `threads` knob
//! documents: "never affects results").
//!
//! The engine parallelises exactly two paths — SGB-Any's sharded ε-grid
//! join and SGB-Around's chunked nearest-center assignment — and resolves
//! everything else back to one worker. The properties below don't care:
//! they demand result equality for *any* requested worker count on *every*
//! path, so a future parallelisation of another path inherits the bar
//! automatically.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::core::OverlapAction;
use sgb::{Algorithm, Metric, Point, SgbQuery};

fn arb_point() -> impl Strategy<Value = Point<2>> {
    (0.0f64..8.0, 0.0f64..8.0).prop_map(|(x, y)| Point::new([x, y]))
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![Just(Metric::L1), Just(Metric::L2), Just(Metric::LInf)]
}

fn arb_overlap() -> impl Strategy<Value = OverlapAction> {
    prop_oneof![
        Just(OverlapAction::JoinAny),
        Just(OverlapAction::Eliminate),
        Just(OverlapAction::FormNewGroup),
    ]
}

/// The worker counts under test: sequential, the smallest parallel count,
/// and a prime that never divides the shard/chunk counts evenly.
const THREADS: [usize; 3] = [1, 2, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SGB-All with any worker-count request is bit-identical to the
    /// sequential run for every metric, overlap semantics, and algorithm —
    /// including the seeded JOIN-ANY arbitration (the RNG must not leak
    /// nondeterminism through the threads knob). SGB-All always resolves
    /// to one worker (arrival-order-sensitive arbitration), and the
    /// resolved count is observable on the result.
    #[test]
    fn all_results_are_identical_for_any_thread_count(
        points in vec(arb_point(), 0..150),
        eps in 0.05f64..2.0,
        metric in arb_metric(),
        overlap in arb_overlap(),
        seed in any::<u64>(),
        algorithm in prop_oneof![
            Just(Algorithm::AllPairs),
            Just(Algorithm::BoundsChecking),
            Just(Algorithm::Indexed),
            Just(Algorithm::Grid),
            Just(Algorithm::Auto),
        ],
    ) {
        let query = |threads: usize| {
            SgbQuery::all(eps)
                .metric(metric)
                .overlap(overlap)
                .seed(seed)
                .algorithm(algorithm)
                .threads(threads)
        };
        let sequential = query(1).run(&points);
        for threads in THREADS {
            let got = query(threads).run(&points);
            prop_assert_eq!(got.threads(), 1, "SGB-All must stay sequential");
            prop_assert_eq!(got.groups(), sequential.groups(),
                "groups diverge: {:?} {} {:?} threads={}", algorithm, metric, overlap, threads);
            prop_assert_eq!(got.eliminated(), sequential.eliminated(),
                "eliminated diverge: {:?} {} {:?} threads={}", algorithm, metric, overlap, threads);
        }
    }

    /// SGB-Any with any worker-count request is bit-identical to the
    /// sequential run — the sharded per-shard DSU forests merged by the
    /// union pass reproduce the sequential component numbering exactly.
    #[test]
    fn any_results_are_identical_for_any_thread_count(
        points in vec(arb_point(), 0..200),
        eps in 0.0f64..2.0,
        metric in arb_metric(),
        algorithm in prop_oneof![
            Just(Algorithm::AllPairs),
            Just(Algorithm::Indexed),
            Just(Algorithm::Grid),
            Just(Algorithm::Auto),
        ],
    ) {
        let query = |threads: usize| {
            SgbQuery::any(eps)
                .metric(metric)
                .algorithm(algorithm)
                .threads(threads)
        };
        let sequential = query(1).run(&points);
        sequential.check_partition(points.len());
        for threads in THREADS {
            let got = query(threads).run(&points);
            prop_assert_eq!(got.groups(), sequential.groups(),
                "groups diverge: {:?} {} threads={}", algorithm, metric, threads);
        }
    }

    /// SGB-Around with any worker-count request is bit-identical to the
    /// sequential run — the chunked parallel assignment stitched back in
    /// arrival order reproduces the sequential grouping, outlier set, and
    /// lowest-index tie-breaking exactly, for every algorithm and with or
    /// without a radius bound.
    #[test]
    fn around_results_are_identical_for_any_thread_count(
        points in vec(arb_point(), 0..150),
        centers in vec(arb_point(), 1..24),
        metric in arb_metric(),
        radius in prop_oneof![Just(None), (0.0f64..4.0).prop_map(Some)],
        algorithm in prop_oneof![
            Just(Algorithm::AllPairs),
            Just(Algorithm::Indexed),
            Just(Algorithm::Grid),
            Just(Algorithm::Auto),
        ],
    ) {
        let query = |threads: usize| {
            let mut q = SgbQuery::around(centers.clone())
                .metric(metric)
                .algorithm(algorithm)
                .threads(threads);
            if let Some(r) = radius {
                q = q.max_radius(r);
            }
            q
        };
        let sequential = query(1).run(&points);
        sequential.check_partition(points.len());
        for threads in THREADS {
            let got = query(threads).run(&points);
            prop_assert_eq!(got.groups(), sequential.groups(),
                "groups diverge: {:?} {} radius {:?} threads={}",
                algorithm, metric, radius, threads);
            prop_assert_eq!(got.outliers(), sequential.outliers(),
                "outliers diverge: {:?} {} radius {:?} threads={}",
                algorithm, metric, radius, threads);
        }
    }
}

/// The seeded-RNG determinism contract in one deterministic regression:
/// SGB-All JOIN-ANY arbitration under a fixed seed gives the same answer
/// no matter what worker count is requested, and different seeds still
/// give (potentially) different answers — the threads knob must neither
/// reseed nor reorder the arbitration draws.
#[test]
fn join_any_seed_determinism_is_independent_of_thread_count() {
    // A tight cluster row so ε-cliques overlap and JOIN-ANY actually draws.
    let points: Vec<Point<2>> = (0..60)
        .map(|i| Point::new([(i as f64) * 0.11, ((i * 7) % 13) as f64 * 0.09]))
        .collect();
    let run = |seed: u64, threads: usize| {
        SgbQuery::all(0.5)
            .overlap(OverlapAction::JoinAny)
            .seed(seed)
            .threads(threads)
            .run(&points)
    };
    for seed in [0u64, 1, 0xDEAD_BEEF] {
        let reference = run(seed, 1);
        for threads in [2, 4, 7, 64] {
            let got = run(seed, threads);
            assert_eq!(
                got.groups(),
                reference.groups(),
                "seed {seed} threads {threads}"
            );
            assert_eq!(
                got.eliminated(),
                reference.eliminated(),
                "seed {seed} threads {threads}"
            );
        }
    }
}
