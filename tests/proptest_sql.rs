//! Property-based robustness tests for the SQL front-end and executor:
//! the parser must never panic, and engine answers must match oracles.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb::relation::sql::parse_statement;
use sgb::relation::{Database, Schema, Table, Value};

fn arb_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::Str),
    ]
}

fn db_with(rows: &[(i64, f64)]) -> Database {
    let mut table = Table::empty(Schema::new(["k", "v"]));
    for (k, v) in rows {
        table.push(vec![Value::Int(*k), Value::Float(*v)]).unwrap();
    }
    let mut db = Database::new();
    db.register("t", table);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser returns `Ok` or `Err` on arbitrary input — never panics.
    #[test]
    fn parser_never_panics_on_noise(input in ".{0,160}") {
        let _ = parse_statement(&input);
    }

    /// ... and on SQL-looking token soup.
    #[test]
    fn parser_never_panics_on_token_soup(
        words in vec(
            prop_oneof![
                Just("SELECT".to_owned()), Just("FROM".to_owned()),
                Just("WHERE".to_owned()), Just("GROUP".to_owned()),
                Just("BY".to_owned()), Just("DISTANCE".to_owned()),
                Just("-".to_owned()), Just("TO".to_owned()),
                Just("ALL".to_owned()), Just("ANY".to_owned()),
                Just("WITHIN".to_owned()), Just("ON".to_owned()),
                Just("OVERLAP".to_owned()), Just("(".to_owned()),
                Just(")".to_owned()), Just(",".to_owned()),
                Just("*".to_owned()), Just("1".to_owned()),
                Just("x".to_owned()), Just("'s'".to_owned()),
                Just("count".to_owned()), Just("AND".to_owned()),
            ],
            0..24,
        )
    ) {
        let _ = parse_statement(&words.join(" "));
    }

    /// SQL filters agree with a Rust-side oracle over random tables.
    #[test]
    fn filter_matches_oracle(rows in vec((-50i64..50, -10.0f64..10.0), 0..60), threshold in -10i64..10) {
        let db = db_with(&rows);
        let out = db
            .query(&format!("SELECT count(*) FROM t WHERE k > {threshold}"))
            .unwrap();
        let expected = rows.iter().filter(|(k, _)| *k > threshold).count() as i64;
        prop_assert_eq!(out.scalar().unwrap(), &Value::Int(expected));
    }

    /// Standard GROUP BY aggregation agrees with a HashMap oracle.
    #[test]
    fn group_by_matches_oracle(rows in vec((0i64..8, -10.0f64..10.0), 0..80)) {
        let db = db_with(&rows);
        let out = db
            .query("SELECT k, count(*), sum(v) FROM t GROUP BY k ORDER BY k")
            .unwrap();
        let mut oracle: std::collections::BTreeMap<i64, (i64, f64)> = Default::default();
        for (k, v) in &rows {
            let e = oracle.entry(*k).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += v;
        }
        prop_assert_eq!(out.len(), oracle.len());
        for (row, (k, (n, sum))) in out.rows.iter().zip(oracle.iter()) {
            prop_assert_eq!(&row[0], &Value::Int(*k));
            prop_assert_eq!(&row[1], &Value::Int(*n));
            let got = row[2].as_f64().unwrap();
            prop_assert!((got - sum).abs() < 1e-9);
        }
    }

    /// ORDER BY produces a non-decreasing key sequence (nulls first).
    #[test]
    fn order_by_sorts(rows in vec((-50i64..50, -10.0f64..10.0), 0..60)) {
        let db = db_with(&rows);
        let out = db.query("SELECT v FROM t ORDER BY v").unwrap();
        let vals: Vec<f64> = out.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Value arithmetic never panics and division by zero errors cleanly.
    #[test]
    fn value_arithmetic_total(a in arb_cell(), b in arb_cell(), op in prop::sample::select(vec!['+', '-', '*', '/'])) {
        let _ = a.arith(op, &b);
    }

    /// `Value` hashing is consistent with equality (HashMap key safety).
    #[test]
    fn value_hash_eq_consistent(a in arb_cell(), b in arb_cell()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// The SGB SQL path agrees with the core operator for arbitrary small
    /// tables (count-per-group multiset equality).
    #[test]
    fn sql_sgb_matches_core(points in vec((0.0f64..4.0, 0.0f64..4.0), 0..40), eps in 0.1f64..2.0) {
        use sgb::core::{sgb_any, SgbAnyConfig};
        use sgb::geom::Point;
        let mut table = Table::empty(Schema::new(["x", "y"]));
        for (x, y) in &points {
            table.push(vec![Value::Float(*x), Value::Float(*y)]).unwrap();
        }
        let mut db = Database::new();
        db.register("p", table);
        let out = db
            .query(&format!(
                "SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN {eps}"
            ))
            .unwrap();
        let pts: Vec<Point<2>> = points.iter().map(|&(x, y)| Point::new([x, y])).collect();
        let grouping = sgb_any(&pts, &SgbAnyConfig::new(eps));
        let mut sql_counts: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        sql_counts.sort_unstable();
        let mut core_counts: Vec<i64> = grouping.sizes().iter().map(|&s| s as i64).collect();
        core_counts.sort_unstable();
        prop_assert_eq!(sql_counts, core_counts);
    }
}
