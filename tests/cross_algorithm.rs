//! Cross-crate integration tests: the three SGB-All strategies and the two
//! SGB-Any strategies are interchangeable, and the paper's worked examples
//! hold end to end.

use sgb::core::{
    sgb_all, sgb_any, AllAlgorithm, AnyAlgorithm, Grouping, OverlapAction, SgbAll, SgbAllConfig,
    SgbAny, SgbAnyConfig,
};
use sgb::datagen::{clustered_points, uniform_points, CheckinConfig, TpchConfig};
use sgb::geom::{Metric, Point};

const ALL_ALGOS: [AllAlgorithm; 3] = [
    AllAlgorithm::AllPairs,
    AllAlgorithm::BoundsChecking,
    AllAlgorithm::Indexed,
];

fn run_all(points: &[Point<2>], eps: f64, metric: Metric, overlap: OverlapAction) -> Vec<Grouping> {
    ALL_ALGOS
        .iter()
        .map(|&algorithm| {
            let cfg = SgbAllConfig::new(eps)
                .metric(metric)
                .overlap(overlap)
                .algorithm(algorithm)
                .seed(2024);
            sgb_all(points, &cfg)
        })
        .collect()
}

#[test]
fn all_algorithms_agree_on_clustered_workload() {
    let points = clustered_points::<2>(1_500, 40, 0.01, 99);
    for metric in [Metric::L2, Metric::LInf] {
        for overlap in [
            OverlapAction::JoinAny,
            OverlapAction::Eliminate,
            OverlapAction::FormNewGroup,
        ] {
            for eps in [0.01, 0.05, 0.2] {
                let runs = run_all(&points, eps, metric, overlap);
                assert_eq!(runs[0], runs[1], "{metric:?} {overlap:?} eps={eps}");
                assert_eq!(runs[0], runs[2], "{metric:?} {overlap:?} eps={eps}");
                runs[0].check_partition(points.len());
            }
        }
    }
}

#[test]
fn all_algorithms_agree_on_checkin_workload() {
    let points = CheckinConfig::gowalla_like(1_200).generate().points();
    for overlap in [OverlapAction::Eliminate, OverlapAction::FormNewGroup] {
        let runs = run_all(&points, 0.25, Metric::L2, overlap);
        assert_eq!(runs[0], runs[1], "{overlap:?}");
        assert_eq!(runs[0], runs[2], "{overlap:?}");
    }
}

#[test]
fn any_algorithms_agree_on_tpch_workload() {
    let points = TpchConfig::new(1.0).density(0.003).generate().sgb1_points();
    for metric in [Metric::L2, Metric::LInf] {
        for eps in [0.001, 0.01, 0.1] {
            let naive = sgb_any(
                &points,
                &SgbAnyConfig::new(eps)
                    .metric(metric)
                    .algorithm(AnyAlgorithm::AllPairs),
            );
            let indexed = sgb_any(
                &points,
                &SgbAnyConfig::new(eps)
                    .metric(metric)
                    .algorithm(AnyAlgorithm::Indexed),
            );
            assert_eq!(naive, indexed, "{metric:?} eps={eps}");
        }
    }
}

#[test]
fn streaming_and_one_shot_are_identical() {
    let points = uniform_points::<2>(400, 5);
    let cfg = SgbAllConfig::new(0.07).overlap(OverlapAction::FormNewGroup);
    let one_shot = sgb_all(&points, &cfg);
    let mut op = SgbAll::new(cfg);
    for p in &points {
        op.push(*p);
    }
    assert_eq!(op.len(), 400);
    assert_eq!(op.finish(), one_shot);

    let cfg = SgbAnyConfig::new(0.07);
    let one_shot = sgb_any(&points, &cfg);
    let mut op = SgbAny::new(cfg);
    for p in &points {
        op.push(*p);
    }
    assert_eq!(op.finish(), one_shot);
}

#[test]
fn eliminate_groups_never_larger_than_join_any_total() {
    // ELIMINATE only removes records relative to JOIN-ANY's placement.
    let points = clustered_points::<2>(800, 20, 0.02, 3);
    let join = sgb_all(&points, &SgbAllConfig::new(0.1));
    let elim = sgb_all(
        &points,
        &SgbAllConfig::new(0.1).overlap(OverlapAction::Eliminate),
    );
    assert_eq!(join.grouped_records(), points.len());
    assert_eq!(elim.grouped_records() + elim.eliminated.len(), points.len());
}

#[test]
fn form_new_group_places_every_record() {
    let points = clustered_points::<2>(800, 20, 0.02, 4);
    let out = sgb_all(
        &points,
        &SgbAllConfig::new(0.1).overlap(OverlapAction::FormNewGroup),
    );
    assert_eq!(out.grouped_records(), points.len());
    assert!(out.eliminated.is_empty());
}

#[test]
fn epsilon_monotonicity_for_sgb_any() {
    // Growing ε can only merge SGB-Any components, never split them.
    let points = uniform_points::<2>(500, 77);
    let mut last = usize::MAX;
    for eps in [0.01, 0.02, 0.05, 0.1, 0.2, 0.5] {
        let n = sgb_any(&points, &SgbAnyConfig::new(eps)).num_groups();
        assert!(n <= last, "components grew from {last} to {n} at eps={eps}");
        last = n;
    }
    assert_eq!(
        sgb_any(&points, &SgbAnyConfig::new(f64::MAX / 4.0)).num_groups(),
        1
    );
}

#[test]
fn linf_groups_at_least_as_coarse_as_l2() {
    // L∞ balls contain L2 balls, so L∞ SGB-Any components are coarser
    // (never more numerous).
    let points = clustered_points::<2>(600, 30, 0.01, 8);
    for eps in [0.02, 0.05, 0.1] {
        let l2 = sgb_any(&points, &SgbAnyConfig::new(eps).metric(Metric::L2));
        let linf = sgb_any(&points, &SgbAnyConfig::new(eps).metric(Metric::LInf));
        assert!(
            linf.num_groups() <= l2.num_groups(),
            "eps={eps}: {} > {}",
            linf.num_groups(),
            l2.num_groups()
        );
    }
}

#[test]
fn three_dimensional_agreement() {
    let points = clustered_points::<3>(500, 20, 0.02, 12);
    let mut previous: Option<Grouping> = None;
    for algorithm in ALL_ALGOS {
        let cfg = SgbAllConfig::new(0.15)
            .metric(Metric::L2)
            .overlap(OverlapAction::Eliminate)
            .algorithm(algorithm)
            .seed(5);
        let out = sgb_all(&points, &cfg);
        out.check_partition(points.len());
        if let Some(prev) = &previous {
            assert_eq!(prev, &out, "{algorithm:?}");
        }
        previous = Some(out);
    }
}

#[test]
fn hull_threshold_is_a_pure_optimisation() {
    // The hull refinement and the member scan are interchangeable exact
    // checks: any threshold yields the same grouping.
    let points = clustered_points::<2>(900, 15, 0.015, 31);
    for overlap in [OverlapAction::JoinAny, OverlapAction::Eliminate] {
        let runs: Vec<Grouping> = [1usize, 4, 16, usize::MAX]
            .iter()
            .map(|&t| {
                let cfg = SgbAllConfig::new(0.15)
                    .metric(Metric::L2)
                    .overlap(overlap)
                    .algorithm(AllAlgorithm::BoundsChecking)
                    .hull_threshold(t)
                    .seed(8);
                sgb_all(&points, &cfg)
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(&runs[0], r, "{overlap:?}");
        }
    }
}

#[test]
fn rtree_fanout_is_a_pure_optimisation() {
    let points = clustered_points::<2>(900, 15, 0.015, 32);
    let runs: Vec<Grouping> = [4usize, 8, 24]
        .iter()
        .map(|&f| {
            let cfg = SgbAllConfig::new(0.1)
                .overlap(OverlapAction::FormNewGroup)
                .algorithm(AllAlgorithm::Indexed)
                .rtree_fanout(f)
                .seed(8);
            sgb_all(&points, &cfg)
        })
        .collect();
    for r in &runs[1..] {
        assert_eq!(&runs[0], r);
    }
    let any_runs: Vec<Grouping> = [4usize, 8, 24]
        .iter()
        .map(|&f| sgb_any(&points, &SgbAnyConfig::new(0.1).rtree_fanout(f)))
        .collect();
    for r in &any_runs[1..] {
        assert_eq!(&any_runs[0], r);
    }
}

#[test]
fn join_any_seed_controls_arbitration_only() {
    // Different seeds may change which group an overlapping point joins,
    // but never the set of grouped records.
    let points = clustered_points::<2>(400, 10, 0.03, 21);
    let sizes: Vec<usize> = (0..5)
        .map(|seed| {
            let out = sgb_all(&points, &SgbAllConfig::new(0.1).seed(seed));
            out.check_partition(points.len());
            assert_eq!(out.grouped_records(), points.len());
            out.num_groups()
        })
        .collect();
    // Group counts may differ slightly across seeds, but all runs place
    // every record.
    assert!(sizes.iter().all(|&n| n > 0));
}

#[test]
fn around_recovers_ground_truth_mixture_centers() {
    // Seed AROUND with the true mixture centers the generator drew points
    // from: both execution paths agree, and with a tight spread almost
    // every point lands on its own generator's center.
    use sgb::core::{sgb_around, AroundAlgorithm, SgbAroundConfig};
    use sgb::datagen::clustered_points_with_centers;

    let (points, centers) = clustered_points_with_centers::<2>(2_000, 16, 0.002, 0xA10);
    for metric in [Metric::L1, Metric::L2, Metric::LInf] {
        let run = |algorithm| {
            let cfg = SgbAroundConfig::new(centers.clone())
                .metric(metric)
                .algorithm(algorithm);
            sgb_around(&points, &cfg)
        };
        let brute = run(AroundAlgorithm::BruteForce);
        let indexed = run(AroundAlgorithm::Indexed);
        assert_eq!(brute, indexed, "{metric}");
        brute.check_partition(points.len());
        assert_eq!(brute.assigned_records(), points.len());
        // Every center of a 16-component mixture over 2000 points should
        // attract a crowd.
        assert_eq!(brute.occupied_centers(), 16, "{metric}");
    }
    // A radius of a few σ keeps the clusters and expels nothing (spread is
    // 0.002, so 10σ covers essentially all mass around each center).
    let bounded = sgb_around(
        &points,
        &SgbAroundConfig::new(centers.clone()).max_radius(0.02),
    );
    assert!(
        bounded.outliers.len() < points.len() / 100,
        "{} outliers at 10 sigma",
        bounded.outliers.len()
    );
}

#[test]
fn around_through_sql_equals_core_on_checkin_data() {
    // End-to-end: check-in points through the SQL engine's AROUND clause
    // equal the core operator on the extracted points.
    use sgb::core::{sgb_around, SgbAroundConfig};
    use sgb::relation::{Database, Schema, Table, Value};

    let dataset = CheckinConfig::brightkite_like(800).generate();
    let points = dataset.points();
    let mut table = Table::empty(Schema::new(["lat", "lon"]));
    for p in &points {
        table
            .push(vec![Value::Float(p.x()), Value::Float(p.y())])
            .unwrap();
    }
    let mut db = Database::new();
    db.register("checkins", table);

    let centers = vec![
        Point::new([0.25, 0.25]),
        Point::new([0.75, 0.25]),
        Point::new([0.5, 0.75]),
    ];
    let out = db
        .query(
            "SELECT count(*) FROM checkins \
             GROUP BY lat, lon AROUND ((0.25, 0.25), (0.75, 0.25), (0.5, 0.75)) L2 WITHIN 0.4",
        )
        .unwrap();
    let expected = sgb_around(&points, &SgbAroundConfig::new(centers).max_radius(0.4)).grouping();
    let mut sql_sizes: Vec<usize> = out
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(n) => *n as usize,
            other => panic!("count(*) must be an int, got {other}"),
        })
        .collect();
    sql_sizes.sort_unstable();
    let mut core_sizes = expected.sizes();
    core_sizes.sort_unstable();
    assert_eq!(sql_sizes, core_sizes);
}
