//! Integration tests for the query governor: statement deadlines,
//! cooperative cancellation, and memory budgets — through both the core
//! `try_run` surface and the SQL session (`SET STATEMENT_TIMEOUT` /
//! `SET MEMORY_BUDGET`) — plus the error-path reusability contract: a
//! failed statement of **any** error class leaves the `Database` fully
//! usable, with coherent cache counters and live, epoch-monotone
//! subscriptions.

use std::time::{Duration, Instant};

use sgb::core::{Algorithm, CancelToken, QueryGovernor, SgbError, SgbQuery};
use sgb::geom::Point;
use sgb::relation::{Database, Error, SessionOptions};

/// Deterministic point cloud in `[0, 100)²` — xorshift64*, no RNG crate,
/// so every run and every platform sees the same data.
fn cloud(n: usize) -> Vec<Point<2>> {
    let mut state = 0x243F_6A88_85A3_08D3_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let unit = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        unit * 100.0
    };
    (0..n).map(|_| Point::new([next(), next()])).collect()
}

/// A session table `t (x, y)` filled with the same cloud, inserted in
/// chunks so statement strings stay reasonable.
fn cloud_db(n: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (x DOUBLE, y DOUBLE)").unwrap();
    for chunk in cloud(n).chunks(10_000) {
        let values: Vec<String> = chunk
            .iter()
            .map(|p| format!("({}, {})", p.coords()[0], p.coords()[1]))
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

/// The acceptance bar: a 1 ms deadline over n = 100 000 comes back as
/// `Err(Timeout)` in bounded time — the operator gives up mid-flight
/// instead of finishing a multi-second grouping.
#[test]
fn one_ms_deadline_over_100k_points_times_out_in_bounded_time() {
    let pts = cloud(100_000);
    let governor = QueryGovernor::unrestricted().with_deadline(Duration::from_millis(1));
    let start = Instant::now();
    let got = SgbQuery::any(0.5).try_run(&pts, &governor);
    let elapsed = start.elapsed();
    assert_eq!(got, Err(SgbError::Timeout));
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout was not bounded: took {elapsed:?}"
    );
    // The same query under no governor still completes (stateless core).
    assert!(SgbQuery::any(0.5)
        .try_run(&pts, &QueryGovernor::unrestricted())
        .is_ok());
}

/// The SQL path of the same bar: `SET STATEMENT_TIMEOUT = 1` aborts the
/// statement, leaves **no partial result in the session caches**, and the
/// rerun after clearing the timeout is bit-identical to a fresh database
/// over the same data.
#[test]
fn statement_timeout_via_sql_leaves_no_partial_state() {
    let sql = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.25";
    let mut db = cloud_db(100_000);
    db.execute("SET STATEMENT_TIMEOUT = 1").unwrap();
    let err = db.execute(sql).unwrap_err();
    assert!(
        matches!(err, Error::Aborted(SgbError::Timeout)),
        "expected Aborted(Timeout), got: {err}"
    );
    let hits_before = db.cache_stats().result_hits;

    db.execute("SET STATEMENT_TIMEOUT = 0").unwrap();
    let rerun = db.execute(sql).unwrap();
    // Had the aborted statement cached a partial `Grouping`, this rerun
    // would have *hit* it; instead it recomputes from scratch…
    assert_eq!(
        db.cache_stats().result_hits,
        hits_before,
        "the aborted statement left a result in the cache"
    );
    // …and agrees bit-for-bit with a database that never saw the timeout.
    let mut fresh = cloud_db(100_000);
    assert_eq!(rerun, fresh.execute(sql).unwrap());
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// A cancelled token aborts the statement before any real work; dropping
/// the token restores normal execution on the very same session.
#[test]
fn cancel_token_aborts_and_clearing_restores() {
    let sql = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1";
    let mut db = cloud_db(600);
    let token = CancelToken::new();
    token.cancel();
    db.set_cancel_token(Some(token));
    let err = db.execute(sql).unwrap_err();
    assert!(
        matches!(err, Error::Aborted(SgbError::Cancelled)),
        "expected Aborted(Cancelled), got: {err}"
    );
    db.set_cancel_token(None);
    let out = db.execute(sql).unwrap();
    let mut fresh = cloud_db(600);
    assert_eq!(out, fresh.execute(sql).unwrap());
}

// ---------------------------------------------------------------------------
// Memory budgets
// ---------------------------------------------------------------------------

/// Under a budget that rules out the ε-grid, `Auto` degrades to the
/// streaming scan — EXPLAIN records why, and the answer stays
/// bit-identical — while an explicitly pinned `Grid` fails loudly with
/// `BudgetExceeded` instead of silently running something else.
#[test]
fn memory_budget_degrades_auto_and_fails_pinned_grid() {
    // n = 600 > the grid's Auto threshold, so the budget is what flips it.
    let sql = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5";
    let mut db = cloud_db(600);
    db.execute("SET MEMORY_BUDGET = 64").unwrap();
    let explain = db.explain(sql).unwrap();
    assert!(
        explain.contains("memory budget"),
        "EXPLAIN does not record the degradation: {explain}"
    );
    let governed = db.execute(sql).unwrap();
    let mut free = cloud_db(600);
    assert_eq!(governed, free.execute(sql).unwrap());

    let mut pinned = Database::with_options(
        SessionOptions::new()
            .with_any_algorithm(Algorithm::Grid)
            .with_memory_budget(Some(64)),
    );
    pinned
        .execute("CREATE TABLE t (x DOUBLE, y DOUBLE)")
        .unwrap();
    let values: Vec<String> = cloud(600)
        .iter()
        .map(|p| format!("({}, {})", p.coords()[0], p.coords()[1]))
        .collect();
    pinned
        .execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    match pinned.execute(sql) {
        Err(Error::Aborted(SgbError::BudgetExceeded { needed, budget })) => {
            assert_eq!(budget, 64);
            assert!(needed > budget, "needed {needed} B <= budget {budget} B");
        }
        other => panic!("expected Aborted(BudgetExceeded), got: {other:?}"),
    }
}

/// A grid that is *already cached* is admitted regardless of the budget:
/// it exists, so running against it allocates nothing new.
#[test]
fn cached_grid_is_admitted_under_any_budget() {
    let sql = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5";
    let mut db = Database::with_options(SessionOptions::new().with_any_algorithm(Algorithm::Grid));
    db.execute("CREATE TABLE t (x DOUBLE, y DOUBLE)").unwrap();
    let values: Vec<String> = cloud(600)
        .iter()
        .map(|p| format!("({}, {})", p.coords()[0], p.coords()[1]))
        .collect();
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    let warm = db.execute(sql).unwrap(); // builds and caches the ε-grid
    db.execute("SET MEMORY_BUDGET = 64").unwrap();
    // Same pinned-Grid query that BudgetExceeded's on a cold session.
    assert_eq!(db.execute(sql).unwrap(), warm);
}

/// The R-tree build is priced like the ε-grid: a pinned `Indexed` plan
/// whose estimated tree would not fit fails loudly with `BudgetExceeded`,
/// while a tree that is *already cached* by a warm run is admitted under
/// the same budget (it exists; running against it allocates nothing new).
#[test]
fn rtree_build_is_priced_and_cached_tree_admitted() {
    let sql = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5";
    let mut pinned = Database::with_options(
        SessionOptions::new()
            .with_any_algorithm(Algorithm::Indexed)
            .with_memory_budget(Some(64)),
    );
    pinned
        .execute("CREATE TABLE t (x DOUBLE, y DOUBLE)")
        .unwrap();
    let values: Vec<String> = cloud(600)
        .iter()
        .map(|p| format!("({}, {})", p.coords()[0], p.coords()[1]))
        .collect();
    pinned
        .execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    match pinned.execute(sql) {
        Err(Error::Aborted(SgbError::BudgetExceeded { needed, budget })) => {
            assert_eq!(budget, 64);
            assert!(needed > budget, "needed {needed} B <= budget {budget} B");
        }
        other => panic!("expected Aborted(BudgetExceeded), got: {other:?}"),
    }

    // Warm session: build and cache the tree first, then clamp the budget.
    let mut warm_db =
        Database::with_options(SessionOptions::new().with_any_algorithm(Algorithm::Indexed));
    warm_db
        .execute("CREATE TABLE t (x DOUBLE, y DOUBLE)")
        .unwrap();
    warm_db
        .execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    let warm = warm_db.execute(sql).unwrap(); // builds and caches the R-tree
    warm_db.execute("SET MEMORY_BUDGET = 64").unwrap();
    assert_eq!(warm_db.execute(sql).unwrap(), warm);
}

/// The SGB-Around center-index build is priced into the budget too: a
/// pinned `Indexed` center index over-budget fails with `BudgetExceeded`,
/// `Auto` degrades to the O(1)-memory brute center scan with a
/// bit-identical answer, and a cached center index is admitted.
#[test]
fn around_center_index_is_priced_and_cached_index_admitted() {
    let sql = "SELECT count(*) FROM t \
               GROUP BY x, y AROUND ((10, 10), (30, 30), (50, 50), (70, 70)) L2 WITHIN 5";
    let mut pinned = Database::with_options(
        SessionOptions::new()
            .with_around_algorithm(Algorithm::Indexed)
            .with_memory_budget(Some(64)),
    );
    pinned
        .execute("CREATE TABLE t (x DOUBLE, y DOUBLE)")
        .unwrap();
    let values: Vec<String> = cloud(600)
        .iter()
        .map(|p| format!("({}, {})", p.coords()[0], p.coords()[1]))
        .collect();
    pinned
        .execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    match pinned.execute(sql) {
        Err(Error::Aborted(SgbError::BudgetExceeded { needed, budget })) => {
            assert_eq!(budget, 64);
            assert!(needed > budget, "needed {needed} B <= budget {budget} B");
        }
        other => panic!("expected Aborted(BudgetExceeded), got: {other:?}"),
    }

    // Auto under the same budget degrades to the brute scan, same answer.
    let mut auto_db = cloud_db(600);
    auto_db.execute("SET MEMORY_BUDGET = 64").unwrap();
    let governed = auto_db.execute(sql).unwrap();
    let mut free = cloud_db(600);
    assert_eq!(governed, free.execute(sql).unwrap());

    // Warm session: cache the center index, then clamp the budget.
    let mut warm_db =
        Database::with_options(SessionOptions::new().with_around_algorithm(Algorithm::Indexed));
    warm_db
        .execute("CREATE TABLE t (x DOUBLE, y DOUBLE)")
        .unwrap();
    warm_db
        .execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    let warm = warm_db.execute(sql).unwrap(); // builds and caches the center index
    warm_db.execute("SET MEMORY_BUDGET = 64").unwrap();
    assert_eq!(warm_db.execute(sql).unwrap(), warm);
}

// ---------------------------------------------------------------------------
// SET statement surface
// ---------------------------------------------------------------------------

#[test]
fn set_option_validation_and_session_state() {
    let mut db = Database::new();
    db.execute("SET STATEMENT_TIMEOUT = 250").unwrap();
    assert_eq!(
        db.session().statement_timeout,
        Some(Duration::from_millis(250))
    );
    // Case-insensitive; 0 clears.
    db.execute("set statement_timeout = 0").unwrap();
    assert_eq!(db.session().statement_timeout, None);
    db.execute("SET MEMORY_BUDGET = 1048576").unwrap();
    assert_eq!(db.session().memory_budget, Some(1 << 20));
    db.execute("SET MEMORY_BUDGET = 0").unwrap();
    assert_eq!(db.session().memory_budget, None);

    let err = db.execute("SET STATEMENT_TIMEOUT = -1").unwrap_err();
    assert!(matches!(err, Error::Eval(_)), "{err}");
    let err = db.execute("SET STATEMENT_TIMEOUT = 'soon'").unwrap_err();
    assert!(matches!(err, Error::Eval(_)), "{err}");
    let err = db.execute("SET WALRUS = 3").unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "{err}");
}

// ---------------------------------------------------------------------------
// Error-path reusability (the robustness invariant)
// ---------------------------------------------------------------------------

/// After every error class — parse, binding, evaluation, cancellation,
/// timeout, budget — the same session answers the same clean query with
/// the same bytes, its cache counters stay coherent (monotone, no
/// phantom hits), and a subscription registered before the errors keeps
/// serving epoch-monotone snapshots and still applies deltas.
#[test]
fn session_stays_usable_after_every_error_class() {
    let clean = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1";
    let mut db = cloud_db(600);
    // A second table whose ε-grid is never cached: the budget provocation
    // must hit the cold planning path (a cached grid is always admitted).
    db.execute("CREATE TABLE u (x DOUBLE, y DOUBLE)").unwrap();
    let values: Vec<String> = cloud(600)
        .iter()
        .map(|p| format!("({}, {})", p.coords()[0], p.coords()[1]))
        .collect();
    db.execute(&format!("INSERT INTO u VALUES {}", values.join(", ")))
        .unwrap();
    let sub = db
        .subscribe("SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5")
        .unwrap();
    let baseline = db.execute(clean).unwrap();
    let sub_groups = sub.snapshot().grouping().num_groups();
    let mut last_epoch = sub.snapshot().epoch();
    let mut last_stats = db.cache_stats();

    // Each closure provokes one error class; the session must shrug it off.
    type Provocation = Box<dyn Fn(&mut Database) -> Error>;
    let provocations: Vec<(&str, Provocation)> = vec![
        (
            "parse",
            Box::new(|db: &mut Database| db.execute("SELEC nonsense FROM").unwrap_err()),
        ),
        (
            "binding",
            Box::new(|db: &mut Database| db.execute("SELECT no_such_col FROM t").unwrap_err()),
        ),
        (
            "eval",
            Box::new(|db: &mut Database| {
                // x / 0.0 is infinite — the similarity attributes must be finite.
                db.execute("SELECT count(*) FROM t GROUP BY x / 0.0, y DISTANCE-TO-ANY L2 WITHIN 1")
                    .unwrap_err()
            }),
        ),
        (
            "cancelled",
            Box::new(|db: &mut Database| {
                let token = CancelToken::new();
                token.cancel();
                db.set_cancel_token(Some(token));
                let err = db
                    .execute("SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2")
                    .unwrap_err();
                db.set_cancel_token(None);
                err
            }),
        ),
        (
            "timeout",
            Box::new(|db: &mut Database| {
                // A 1 ns deadline is expired by the first governor check —
                // deterministic at any table size (the API accepts what the
                // millisecond-granular SQL surface cannot express).
                let opts = db
                    .session()
                    .with_statement_timeout(Some(Duration::from_nanos(1)));
                *db.session_mut() = opts;
                let err = db
                    .execute("SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2")
                    .unwrap_err();
                let opts = db.session().with_statement_timeout(None);
                *db.session_mut() = opts;
                err
            }),
        ),
        (
            "budget",
            Box::new(|db: &mut Database| {
                let opts = db
                    .session()
                    .with_any_algorithm(Algorithm::Grid)
                    .with_memory_budget(Some(64));
                *db.session_mut() = opts;
                let err = db
                    .execute("SELECT count(*) FROM u GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 3")
                    .unwrap_err();
                let opts = db
                    .session()
                    .with_any_algorithm(Algorithm::Auto)
                    .with_memory_budget(None);
                *db.session_mut() = opts;
                err
            }),
        ),
    ];

    for (class, provoke) in provocations {
        let err = provoke(&mut db);
        match class {
            "cancelled" => assert!(
                matches!(err, Error::Aborted(SgbError::Cancelled)),
                "{class}: {err}"
            ),
            "timeout" => assert!(
                matches!(err, Error::Aborted(SgbError::Timeout)),
                "{class}: {err}"
            ),
            "budget" => assert!(
                matches!(err, Error::Aborted(SgbError::BudgetExceeded { .. })),
                "{class}: {err}"
            ),
            _ => {}
        }

        // (a) The clean query still answers with the same bytes.
        assert_eq!(
            db.execute(clean).unwrap(),
            baseline,
            "after {class} error the clean query changed"
        );
        // (b) Cache counters only ever move forward.
        let stats = db.cache_stats();
        assert!(
            stats.result_hits >= last_stats.result_hits
                && stats.result_misses >= last_stats.result_misses,
            "after {class} error the cache counters went backwards: \
             {last_stats:?} -> {stats:?}"
        );
        last_stats = stats;
        // (c) The subscription is untouched: same grouping, monotone epoch.
        let snap = sub.snapshot();
        assert!(
            snap.epoch() >= last_epoch,
            "after {class} error the subscription epoch went backwards"
        );
        last_epoch = snap.epoch();
        assert_eq!(
            snap.grouping().num_groups(),
            sub_groups,
            "after {class} error the subscription grouping changed"
        );
    }

    // The session still applies deltas: an INSERT advances the epoch.
    db.execute("INSERT INTO t VALUES (200.0, 200.0)").unwrap();
    let snap = sub.snapshot();
    assert!(snap.epoch() > last_epoch);
    assert_eq!(snap.grouping().num_groups(), sub_groups + 1);
}
