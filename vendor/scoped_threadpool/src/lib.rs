//! Offline vendored stand-in for the `scoped_threadpool` crate: a scoped
//! data-parallel worker pool (API-compatible subset).
//!
//! The build environment has no crates-registry access (see
//! `vendor/README.md`), so the parallel execution engine cannot depend on
//! `rayon` or the real `scoped_threadpool`. This stand-in provides the
//! same two-call surface — [`Pool::new`] and [`Pool::scoped`] with
//! [`Scope::execute`] — built on [`std::thread::scope`], which is what
//! makes borrowing non-`'static` data from the caller's stack sound: the
//! scope joins every worker before `scoped` returns, so a job may freely
//! borrow anything that outlives the `scoped` call.
//!
//! Jobs go through a chunked work queue (a mutex-guarded deque with a
//! condvar): workers pop and run jobs until the scope closure has returned
//! *and* the queue has drained, so `scoped` is an implicit `join_all`.
//!
//! **Panic isolation.** Every job runs under
//! [`std::panic::catch_unwind`], and the queue recovers poisoned locks
//! (`unwrap_or_else(PoisonError::into_inner)`), so a panicking job can
//! never poison the queue mutex or deadlock the scope. The *first* panic
//! payload is captured, the remaining queued jobs are cancelled (drained
//! without running), and the outcome is surfaced two ways:
//!
//! * [`Pool::scoped`] resumes the captured panic on the calling thread —
//!   the upstream contract, unchanged;
//! * [`Pool::try_scoped`] returns it as an [`Err(Panicked)`](Panicked)
//!   value instead, which is how the engine maps a failed shard to a typed
//!   `WorkerPanicked` error rather than a process abort.
//!
//! Behavioral differences from upstream `scoped_threadpool 0.1`:
//!
//! * workers are spawned per `scoped` call instead of living for the
//!   lifetime of the [`Pool`] — a few tens of microseconds per call, which
//!   the cost model's parallelism threshold already amortises;
//! * `Scope::join_all` / `Scope::forever` are not provided (the implicit
//!   join at scope end is the only synchronisation point).
//!
//! ```
//! use scoped_threadpool::Pool;
//!
//! let mut data = [3u64, 1, 4, 1, 5, 9, 2, 6];
//! let mut pool = Pool::new(4);
//! pool.scoped(|scope| {
//!     for chunk in data.chunks_mut(2) {
//!         scope.execute(move || {
//!             for v in chunk.iter_mut() {
//!                 *v *= 10;
//!             }
//!         });
//!     }
//! });
//! assert_eq!(data, [30, 10, 40, 10, 50, 90, 20, 60]);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A boxed job, borrowing at most `'scope` data.
type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Process-wide count of jobs a worker finished without panicking.
static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of jobs that panicked inside a worker.
static JOBS_PANICKED: AtomicU64 = AtomicU64::new(0);

/// Total jobs run to completion by any pool in this process, ever —
/// a monotone telemetry counter (upstream `scoped_threadpool` has no such
/// hook; the engine's metrics registry snapshots it).
pub fn jobs_executed() -> u64 {
    JOBS_EXECUTED.load(Ordering::Relaxed)
}

/// Total jobs that panicked inside a worker in this process, ever —
/// the monotone companion of [`jobs_executed`].
pub fn jobs_panicked() -> u64 {
    JOBS_PANICKED.load(Ordering::Relaxed)
}

/// A captured panic payload from a worker job, returned by
/// [`Pool::try_scoped`]. [`message`](Panicked::message) extracts the
/// conventional `&str` / `String` payload; [`into_payload`](Panicked::into_payload)
/// recovers the raw payload for re-raising.
pub struct Panicked {
    payload: Box<dyn Any + Send + 'static>,
}

impl Panicked {
    /// The panic message, when the payload is the conventional `&str` or
    /// `String` produced by `panic!`; a fixed fallback otherwise.
    pub fn message(&self) -> &str {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s
        } else {
            "worker panicked with a non-string payload"
        }
    }

    /// The raw panic payload, suitable for [`std::panic::resume_unwind`].
    pub fn into_payload(self) -> Box<dyn Any + Send + 'static> {
        self.payload
    }
}

impl std::fmt::Debug for Panicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Panicked")
            .field("message", &self.message())
            .finish()
    }
}

/// The shared work queue one `scoped` call drains.
struct Queue<'scope> {
    state: Mutex<QueueState<'scope>>,
    ready: Condvar,
}

struct QueueState<'scope> {
    jobs: VecDeque<Job<'scope>>,
    /// Set once the scope closure has returned: no further jobs will
    /// arrive, workers exit when the deque is empty.
    closed: bool,
    /// Set by the first panicking job: queued jobs are cancelled (dropped
    /// without running) and workers exit as soon as they observe it.
    cancelled: bool,
    /// The first captured panic payload.
    panic: Option<Box<dyn Any + Send + 'static>>,
}

impl<'scope> Queue<'scope> {
    fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
                cancelled: false,
                panic: None,
            }),
            ready: Condvar::new(),
        }
    }

    /// Locks the queue state, recovering from poisoning: the state is a
    /// plain deque plus flags and stays consistent across a panic at any
    /// point, so a poisoned lock carries no torn invariants. Without this,
    /// one panicking job would poison the mutex and every later
    /// `lock().unwrap()` would panic inside `std::thread::scope`,
    /// escalating to a process abort.
    fn lock(&self) -> MutexGuard<'_, QueueState<'scope>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, job: Job<'scope>) {
        let mut st = self.lock();
        // After a panic the scope is doomed: accepting more work would
        // only waste it, so new jobs are dropped immediately.
        if !st.cancelled {
            st.jobs.push_back(job);
        }
        drop(st);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Blocks for the next job; `None` once the queue is closed and empty
    /// or the scope was cancelled by a panicking job.
    fn pop(&self) -> Option<Job<'scope>> {
        let mut st = self.lock();
        loop {
            if st.cancelled {
                // Cancelled: drop the backlog so buffered closures (and
                // whatever they captured) are released promptly.
                st.jobs.clear();
                return None;
            }
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records a job panic: the first payload wins, every queued job is
    /// cancelled, and all waiting workers are woken so they can exit.
    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut st = self.lock();
        st.cancelled = true;
        if st.panic.is_none() {
            st.panic = Some(payload);
        }
        st.jobs.clear();
        drop(st);
        self.ready.notify_all();
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.lock().panic.take()
    }
}

/// A pool of `n` worker threads for scoped, borrowing jobs.
pub struct Pool {
    threads: u32,
}

impl Pool {
    /// A pool that runs jobs on `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn new(threads: u32) -> Pool {
        assert!(threads >= 1, "a thread pool needs at least one worker");
        Pool { threads }
    }

    /// Number of worker threads a `scoped` call will use.
    pub fn thread_count(&self) -> u32 {
        self.threads
    }

    /// Runs `f` with a [`Scope`] through which jobs borrowing `'scope`
    /// data can be submitted; returns only after every submitted job has
    /// finished (workers are joined), then yields `f`'s result.
    ///
    /// A panicking job aborts the scope: remaining queued jobs are
    /// cancelled and the first panic is resurfaced on the calling thread
    /// once the workers have been joined. Use [`try_scoped`](Self::try_scoped)
    /// to receive the panic as a value instead.
    pub fn scoped<'scope, F, R>(&mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'scope>) -> R,
    {
        match self.try_scoped(f) {
            Ok(r) => r,
            Err(panicked) => resume_unwind(panicked.into_payload()),
        }
    }

    /// Like [`scoped`](Self::scoped), but a worker panic is returned as
    /// [`Err(Panicked)`](Panicked) instead of being resumed — the calling
    /// thread keeps control and can surface the failure as a typed error.
    ///
    /// On `Err`, every job either ran to completion or was cancelled
    /// before starting; no job is left half-run mid-queue and the pool is
    /// fully reusable (workers are per-call, nothing stays poisoned).
    pub fn try_scoped<'scope, F, R>(&mut self, f: F) -> Result<R, Panicked>
    where
        F: FnOnce(&Scope<'_, 'scope>) -> R,
    {
        let queue = Queue::new();
        let result = std::thread::scope(|s| {
            for _ in 0..self.threads {
                s.spawn(|| {
                    while let Some(job) = queue.pop() {
                        // The job is consumed either way; shared state it
                        // touched is the caller's responsibility (the
                        // engine's shards own disjoint data), which is
                        // what the AssertUnwindSafe asserts. The failpoint
                        // sits *inside* the catch so an injected panic is
                        // indistinguishable from a real job panic.
                        match catch_unwind(AssertUnwindSafe(|| {
                            failpoints::fail_point!("scoped_threadpool::run_job");
                            job();
                        })) {
                            Ok(()) => {
                                JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(payload) => {
                                JOBS_PANICKED.fetch_add(1, Ordering::Relaxed);
                                queue.record_panic(payload);
                            }
                        }
                    }
                });
            }
            let result = f(&Scope { queue: &queue });
            queue.close();
            result
        });
        match queue.take_panic() {
            Some(payload) => Err(Panicked { payload }),
            None => Ok(result),
        }
    }
}

/// Handle submitting jobs to the workers of one [`Pool::scoped`] call.
pub struct Scope<'pool, 'scope> {
    queue: &'pool Queue<'scope>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` to run on a worker thread. The job may borrow anything
    /// that outlives the enclosing [`Pool::scoped`] call; it is guaranteed
    /// to have finished (or been cancelled after an earlier job's panic)
    /// by the time `scoped` returns.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.queue.push(Box::new(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_before_returning() {
        let counter = AtomicUsize::new(0);
        let mut pool = Pool::new(4);
        pool.scoped(|scope| {
            for _ in 0..100 {
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_borrow_disjoint_mutable_chunks() {
        let mut data = vec![0u64; 1000];
        let mut pool = Pool::new(3);
        pool.scoped(|scope| {
            for (c, chunk) in data.chunks_mut(128).enumerate() {
                scope.execute(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (c * 128 + i) as u64;
                    }
                });
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn scoped_returns_the_closure_result() {
        let mut pool = Pool::new(2);
        let r = pool.scoped(|scope| {
            scope.execute(|| {});
            7
        });
        assert_eq!(r, 7);
        assert_eq!(pool.thread_count(), 2);
    }

    #[test]
    fn single_worker_pool_drains_the_queue() {
        let sum = AtomicUsize::new(0);
        let mut pool = Pool::new(1);
        pool.scoped(|scope| {
            for i in 1..=10 {
                let sum = &sum;
                scope.execute(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn scoped_can_be_called_repeatedly() {
        let mut pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..5 {
            pool.scoped(|scope| {
                for _ in 0..4 {
                    scope.execute(|| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn try_scoped_surfaces_the_first_panic_as_a_value() {
        let mut pool = Pool::new(2);
        let err = pool
            .try_scoped(|scope| {
                scope.execute(|| panic!("shard 3 exploded"));
            })
            .unwrap_err();
        assert_eq!(err.message(), "shard 3 exploded");
    }

    #[test]
    fn panic_cancels_queued_jobs_and_pool_stays_usable() {
        let ran = AtomicUsize::new(0);
        // One worker: the first job panics; the many queued jobs behind it
        // must be cancelled, not run.
        let mut pool = Pool::new(1);
        let err = pool.try_scoped(|scope| {
            scope.execute(|| panic!("first"));
            for _ in 0..100 {
                let ran = &ran;
                scope.execute(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(err.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 0, "queued jobs were cancelled");

        // The queue mutex was not poisoned: the same pool runs fresh work.
        let after = AtomicUsize::new(0);
        pool.scoped(|scope| {
            for _ in 0..8 {
                let after = &after;
                scope.execute(move || {
                    after.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(after.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scoped_resumes_the_panic_on_the_caller() {
        let mut pool = Pool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("resurfaced"));
            });
        }));
        let payload = caught.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"resurfaced"));
    }

    #[test]
    fn job_counters_are_monotone_and_account_for_panics() {
        let before_ok = jobs_executed();
        let before_bad = jobs_panicked();
        let mut pool = Pool::new(2);
        pool.scoped(|scope| {
            for _ in 0..10 {
                scope.execute(|| {});
            }
        });
        let err = pool.try_scoped(|scope| {
            scope.execute(|| panic!("counted"));
        });
        assert!(err.is_err());
        // Other tests run concurrently, so only lower bounds hold.
        assert!(jobs_executed() >= before_ok + 10);
        assert!(jobs_panicked() > before_bad);
    }

    #[test]
    fn non_string_payloads_get_a_fallback_message() {
        let mut pool = Pool::new(1);
        let err = pool
            .try_scoped(|scope| {
                scope.execute(|| std::panic::panic_any(42_u32));
            })
            .unwrap_err();
        assert_eq!(err.message(), "worker panicked with a non-string payload");
        assert_eq!(err.into_payload().downcast_ref::<u32>(), Some(&42));
    }
}
