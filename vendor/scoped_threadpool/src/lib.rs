//! Offline vendored stand-in for the `scoped_threadpool` crate: a scoped
//! data-parallel worker pool (API-compatible subset).
//!
//! The build environment has no crates-registry access (see
//! `vendor/README.md`), so the parallel execution engine cannot depend on
//! `rayon` or the real `scoped_threadpool`. This stand-in provides the
//! same two-call surface — [`Pool::new`] and [`Pool::scoped`] with
//! [`Scope::execute`] — built on [`std::thread::scope`], which is what
//! makes borrowing non-`'static` data from the caller's stack sound: the
//! scope joins every worker before `scoped` returns, so a job may freely
//! borrow anything that outlives the `scoped` call.
//!
//! Jobs go through a chunked work queue (a mutex-guarded deque with a
//! condvar): workers pop and run jobs until the scope closure has returned
//! *and* the queue has drained, so `scoped` is an implicit `join_all`.
//!
//! Behavioral differences from upstream `scoped_threadpool 0.1`:
//!
//! * workers are spawned per `scoped` call instead of living for the
//!   lifetime of the [`Pool`] — a few tens of microseconds per call, which
//!   the cost model's parallelism threshold already amortises;
//! * `Scope::join_all` / `Scope::forever` are not provided (the implicit
//!   join at scope end is the only synchronisation point).
//!
//! ```
//! use scoped_threadpool::Pool;
//!
//! let mut data = [3u64, 1, 4, 1, 5, 9, 2, 6];
//! let mut pool = Pool::new(4);
//! pool.scoped(|scope| {
//!     for chunk in data.chunks_mut(2) {
//!         scope.execute(move || {
//!             for v in chunk.iter_mut() {
//!                 *v *= 10;
//!             }
//!         });
//!     }
//! });
//! assert_eq!(data, [30, 10, 40, 10, 50, 90, 20, 60]);
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A boxed job, borrowing at most `'scope` data.
type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// The shared work queue one `scoped` call drains.
struct Queue<'scope> {
    state: Mutex<QueueState<'scope>>,
    ready: Condvar,
}

struct QueueState<'scope> {
    jobs: VecDeque<Job<'scope>>,
    /// Set once the scope closure has returned: no further jobs will
    /// arrive, workers exit when the deque is empty.
    closed: bool,
}

impl<'scope> Queue<'scope> {
    fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job<'scope>) {
        self.state.lock().unwrap().jobs.push_back(job);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Blocks for the next job; `None` once the queue is closed and empty.
    fn pop(&self) -> Option<Job<'scope>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }
}

/// A pool of `n` worker threads for scoped, borrowing jobs.
pub struct Pool {
    threads: u32,
}

impl Pool {
    /// A pool that runs jobs on `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn new(threads: u32) -> Pool {
        assert!(threads >= 1, "a thread pool needs at least one worker");
        Pool { threads }
    }

    /// Number of worker threads a `scoped` call will use.
    pub fn thread_count(&self) -> u32 {
        self.threads
    }

    /// Runs `f` with a [`Scope`] through which jobs borrowing `'scope`
    /// data can be submitted; returns only after every submitted job has
    /// finished (workers are joined), then yields `f`'s result.
    ///
    /// A panicking job aborts the scope: the panic is resurfaced on the
    /// calling thread once the remaining workers have been joined.
    pub fn scoped<'scope, F, R>(&mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'scope>) -> R,
    {
        let queue = Queue::new();
        std::thread::scope(|s| {
            for _ in 0..self.threads {
                s.spawn(|| {
                    while let Some(job) = queue.pop() {
                        job();
                    }
                });
            }
            let result = f(&Scope { queue: &queue });
            queue.close();
            result
        })
    }
}

/// Handle submitting jobs to the workers of one [`Pool::scoped`] call.
pub struct Scope<'pool, 'scope> {
    queue: &'pool Queue<'scope>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` to run on a worker thread. The job may borrow anything
    /// that outlives the enclosing [`Pool::scoped`] call; it is guaranteed
    /// to have finished by the time `scoped` returns.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.queue.push(Box::new(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_before_returning() {
        let counter = AtomicUsize::new(0);
        let mut pool = Pool::new(4);
        pool.scoped(|scope| {
            for _ in 0..100 {
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_borrow_disjoint_mutable_chunks() {
        let mut data = vec![0u64; 1000];
        let mut pool = Pool::new(3);
        pool.scoped(|scope| {
            for (c, chunk) in data.chunks_mut(128).enumerate() {
                scope.execute(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (c * 128 + i) as u64;
                    }
                });
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn scoped_returns_the_closure_result() {
        let mut pool = Pool::new(2);
        let r = pool.scoped(|scope| {
            scope.execute(|| {});
            7
        });
        assert_eq!(r, 7);
        assert_eq!(pool.thread_count(), 2);
    }

    #[test]
    fn single_worker_pool_drains_the_queue() {
        let sum = AtomicUsize::new(0);
        let mut pool = Pool::new(1);
        pool.scoped(|scope| {
            for i in 1..=10 {
                let sum = &sum;
                scope.execute(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn scoped_can_be_called_repeatedly() {
        let mut pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..5 {
            pool.scoped(|scope| {
                for _ in 0..4 {
                    scope.execute(|| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 20);
    }
}
