//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace. The build environment has no network access to a
//! crates registry, so the workspace vendors the handful of APIs it needs:
//! [`rngs::SmallRng`], [`Rng`], and [`SeedableRng`].
//!
//! The generator is xoshiro256++ (the same family `rand`'s `SmallRng` uses on
//! 64-bit targets), seeded through SplitMix64 exactly as `rand_core` does, so
//! streams are high quality and deterministic per seed, though not
//! bit-identical to upstream `rand`.

/// A source of random 64-bit words. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a `u64`, mirroring
/// `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain by
/// [`Rng::gen`] (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                // Rejection sampling to remove modulo bias.
                let zone = <$u>::MAX - (<$u>::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64() as $u;
                    if v <= zone {
                        return (self.start as $u).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Work with span − 1: the span itself (hi − lo + 1) would
                // overflow for the full 64-bit domain, and `lo..hi + 1`
                // would wrap for any range ending at the type's MAX.
                let span_m1 = (hi as $u).wrapping_sub(lo as $u);
                if span_m1 == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span_m1 + 1;
                let zone = <$u>::MAX - (<$u>::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64() as $u;
                    if v <= zone {
                        return (lo as $u).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
    )+};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                /// Largest representable value strictly below finite `x`.
                fn prev_below(x: $t) -> $t {
                    if x > 0.0 {
                        <$t>::from_bits(x.to_bits() - 1)
                    } else if x < 0.0 {
                        <$t>::from_bits(x.to_bits() + 1)
                    } else {
                        // Below ±0.0 sits the smallest negative subnormal.
                        -<$t>::from_bits(1)
                    }
                }
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                if v < self.end {
                    v
                } else {
                    // `start + span·unit` can round up onto the excluded
                    // bound; step one ulp back inside the range.
                    prev_below(self.end)
                }
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// The user-facing sampling trait, mirroring the subset of `rand::Rng` the
/// workspace uses: `gen`, `gen_range`, and `gen_bool`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, the full domain for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, high-quality PRNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic per seed; not cryptographically secure — exactly the
    /// contract of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn inclusive_ranges_reaching_type_max_are_valid() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(rng.gen_range(1u8..=u8::MAX) >= 1);
            assert!(rng.gen_range(1u64..=u64::MAX) >= 1);
            assert!(rng.gen_range(0i64..=i64::MAX) >= 0);
            assert!((-3..=3).contains(&rng.gen_range(-3i64..=3)));
        }
        // Full domains fall back to raw words; just ensure no panic.
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i8::MIN..=i8::MAX);
    }

    #[test]
    fn float_ranges_never_yield_the_excluded_bound() {
        // One-ulp-wide ranges admit exactly one value: rounding in
        // `start + span·unit` must not surface the excluded bound.
        let mut rng = SmallRng::seed_from_u64(9);
        let lo = 1.0f32;
        let hi = f32::from_bits(lo.to_bits() + 1);
        for _ in 0..200 {
            assert_eq!(rng.gen_range(lo..hi), lo);
        }
        let lo64 = -1.0f64;
        let hi64 = f64::from_bits(lo64.to_bits() - 1); // next_up(-1.0)
        for _ in 0..200 {
            assert_eq!(rng.gen_range(lo64..hi64), lo64);
        }
    }

    #[test]
    fn unit_floats_in_range_and_varied() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
