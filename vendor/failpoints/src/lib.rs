//! Offline vendored stand-in for the `fail` crate: named fault-injection
//! points (an API-compatible subset).
//!
//! The build environment has no crates-registry access (see
//! `vendor/README.md`), so the chaos-testing harness cannot depend on the
//! real [`fail`](https://crates.io/crates/fail) crate. This stand-in
//! provides the subset the workspace uses:
//!
//! * [`fail_point!`] — marks an injection site. The unit form can only
//!   *panic* when triggered; the closure form early-`return`s the closure's
//!   value, which is how sites inject typed errors.
//! * [`cfg`] / [`remove`] / [`teardown`] — configure what a site does, with
//!   the upstream action grammar subset `[P%]action[(arg)]` where `action`
//!   is `off`, `panic`, or `return` and `P` is an integer firing
//!   probability in percent (default 100).
//! * [`set_seed`] — seeds the global PRNG behind probabilistic actions, so
//!   a chaos run is reproducible from one integer.
//! * [`fires`] / [`fire_count`] — how many times faults actually triggered
//!   (globally / per site), letting tests assert a minimum fault volume.
//!
//! **Zero-cost when disabled.** Everything here is gated on the `enabled`
//! cargo feature. Without it the evaluators are `#[inline(always)]` stubs
//! returning `None`/`()` and every `fail_point!` site constant-folds away;
//! the configuration functions become no-ops so test code compiles
//! unchanged in both modes.
//!
//! The registry is **process-global** (like upstream): tests that configure
//! failpoints must not run concurrently with tests that assume none are
//! armed. The workspace keeps all failpoint-driven assertions in a single
//! `#[test]` per binary.

/// The evaluated outcome of a live, firing failpoint.
#[doc(hidden)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Triggered {
    /// `panic` / `panic(msg)` — the site must panic.
    Panic(String),
    /// `return` / `return(arg)` — the closure form early-returns.
    Return(Option<String>),
}

#[cfg(feature = "enabled")]
mod imp {
    use super::Triggered;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// One configured action: what to do and how often.
    #[derive(Clone, Debug)]
    struct Action {
        /// Firing probability in percent (0..=100).
        probability: u32,
        task: Task,
    }

    #[derive(Clone, Debug)]
    enum Task {
        Off,
        Panic(Option<String>),
        Return(Option<String>),
    }

    #[derive(Default)]
    struct Registry {
        points: HashMap<String, Action>,
        /// xorshift64* state behind probabilistic actions.
        rng: u64,
        /// Total number of times any site actually fired.
        fires: u64,
        /// Per-site fire counters.
        counts: HashMap<String, u64>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
        REGISTRY.get_or_init(|| {
            Mutex::new(Registry {
                rng: 0x9E3779B97F4A7C15,
                ..Registry::default()
            })
        })
    }

    fn lock() -> std::sync::MutexGuard<'static, Registry> {
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parses `[P%]action[(arg)]`.
    fn parse(spec: &str) -> Result<Action, String> {
        let spec = spec.trim();
        let (probability, rest) = match spec.split_once('%') {
            Some((p, rest)) => {
                let p: u32 = p
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad probability in failpoint action '{spec}'"))?;
                if p > 100 {
                    return Err(format!("probability {p}% out of range in '{spec}'"));
                }
                (p, rest.trim())
            }
            None => (100, spec),
        };
        let (name, arg) = match rest.split_once('(') {
            Some((name, tail)) => {
                let arg = tail
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed '(' in failpoint action '{spec}'"))?;
                (name.trim(), Some(arg.to_owned()))
            }
            None => (rest, None),
        };
        let task = match name {
            "off" => Task::Off,
            "panic" => Task::Panic(arg),
            "return" => Task::Return(arg),
            other => return Err(format!("unknown failpoint action '{other}'")),
        };
        Ok(Action { probability, task })
    }

    pub fn cfg(name: impl Into<String>, action: &str) -> Result<(), String> {
        let action = parse(action)?;
        lock().points.insert(name.into(), action);
        Ok(())
    }

    pub fn remove(name: &str) {
        lock().points.remove(name);
    }

    pub fn teardown() {
        let mut reg = lock();
        reg.points.clear();
    }

    pub fn set_seed(seed: u64) {
        // xorshift needs a nonzero state.
        lock().rng = seed | 1;
    }

    pub fn fires() -> u64 {
        lock().fires
    }

    pub fn fire_count(name: &str) -> u64 {
        lock().counts.get(name).copied().unwrap_or(0)
    }

    /// Rolls the registry's PRNG and decides whether `name` fires; records
    /// the fire when it does.
    pub fn trigger(name: &str) -> Option<Triggered> {
        let mut reg = lock();
        let action = reg.points.get(name)?.clone();
        if action.probability < 100 {
            // xorshift64* — deterministic under `set_seed`.
            let mut x = reg.rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            reg.rng = x;
            let roll = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 33) % 100;
            if roll as u32 >= action.probability {
                return None;
            }
        }
        let out = match action.task {
            Task::Off => return None,
            Task::Panic(msg) => {
                Triggered::Panic(msg.unwrap_or_else(|| format!("failpoint '{name}' panicked")))
            }
            Task::Return(arg) => Triggered::Return(arg),
        };
        reg.fires += 1;
        *reg.counts.entry(name.to_owned()).or_insert(0) += 1;
        Some(out)
    }
}

#[cfg(feature = "enabled")]
pub use imp::{cfg, fire_count, fires, remove, set_seed, teardown};

// ---- disabled stubs: every call folds to a constant ------------------------

/// Configures a failpoint (no-op without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn cfg(_name: impl Into<String>, _action: &str) -> Result<(), String> {
    Ok(())
}

/// Removes a failpoint (no-op without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn remove(_name: &str) {}

/// Removes every failpoint (no-op without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn teardown() {}

/// Seeds the action PRNG (no-op without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn set_seed(_seed: u64) {}

/// Total fired faults (always 0 without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn fires() -> u64 {
    0
}

/// Per-site fired faults (always 0 without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn fire_count(_name: &str) -> u64 {
    0
}

/// Evaluates a site for the unit `fail_point!` form: panics when the
/// configured action says so. Sites call this through the macro only.
#[doc(hidden)]
#[cfg(feature = "enabled")]
pub fn eval_unit(name: &str) {
    match imp::trigger(name) {
        Some(Triggered::Panic(msg)) => panic!("{msg}"),
        Some(Triggered::Return(_)) | None => {}
    }
}

#[doc(hidden)]
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn eval_unit(_name: &str) {}

/// Evaluates a site for the closure `fail_point!` form: `Some(arg)` when
/// the site fires with a `return` action (the macro early-returns the
/// closure's value), panicking directly on a `panic` action.
#[doc(hidden)]
#[cfg(feature = "enabled")]
pub fn eval_return(name: &str) -> Option<Option<String>> {
    match imp::trigger(name) {
        Some(Triggered::Panic(msg)) => panic!("{msg}"),
        Some(Triggered::Return(arg)) => Some(arg),
        None => None,
    }
}

#[doc(hidden)]
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn eval_return(_name: &str) -> Option<Option<String>> {
    None
}

/// Marks a fault-injection site.
///
/// * `fail_point!("site")` — the site can be made to **panic** via
///   [`cfg`]`("site", "panic(msg)")`.
/// * `fail_point!("site", |arg| expr)` — additionally supports the
///   `return(arg)` action: when it fires, the enclosing function
///   early-returns `expr` (the closure receives the optional action
///   argument), which is how sites inject typed errors.
///
/// Both forms compile to nothing without the `enabled` feature.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::eval_unit($name)
    };
    ($name:expr, $body:expr) => {
        if let Some(arg) = $crate::eval_return($name) {
            #[allow(clippy::redundant_closure_call)]
            return ($body)(arg);
        }
    };
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    #[test]
    fn parse_cfg_fire_and_count() {
        super::teardown();
        super::set_seed(42);
        assert!(super::cfg("t::always", "return(x)").is_ok());
        assert!(super::cfg("t::off", "off").is_ok());
        assert!(super::cfg("t::bad", "explode").is_err());
        assert!(super::cfg("t::bad", "150%panic").is_err());

        fn probe() -> Option<String> {
            crate::fail_point!("t::always", |arg: Option<String>| arg);
            None
        }
        assert_eq!(probe(), Some("x".to_owned()));
        assert_eq!(super::fire_count("t::always"), 1);
        assert!(super::fires() >= 1);

        super::eval_unit("t::off"); // must not panic
        super::remove("t::always");
        assert_eq!(probe(), None);

        // Probabilistic actions fire roughly at their rate, deterministically.
        assert!(super::cfg("t::half", "50%return").is_ok());
        let fired = (0..1000).filter(|_| probe_half()).count();
        fn probe_half() -> bool {
            crate::fail_point!("t::half", |_| true);
            false
        }
        assert!(fired > 300 && fired < 700, "fired {fired}/1000");
        super::teardown();
    }
}
