//! Offline, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API used by this workspace. The build environment cannot
//! reach a crates registry, so the workspace vendors a miniature harness
//! with the same surface: [`Criterion`], [`criterion_group!`] /
//! [`criterion_main!`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! and [`black_box`].
//!
//! Timing is a simple mean over wall-clock batches — good enough for the
//! relative comparisons the `sgb-bench` experiments make, with none of
//! upstream criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement settings shared by [`Criterion`] and benchmark groups.
#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_millis(900),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
    listing_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with libtest-ish arguments; honor
        // the useful subset (a name filter and --list) and ignore the rest.
        let mut filter = None;
        let mut listing_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" | "-q" | "--quiet" | "--verbose" => {}
                "--list" => listing_only = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Criterion {
            settings: Settings::default(),
            filter,
            listing_only,
        }
    }
}

impl Criterion {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Overrides the total time spent measuring each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Overrides the warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        self.run_one(&id.into_benchmark_id().0, settings, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            settings: None,
        }
    }

    fn run_one<F>(&mut self, name: &str, settings: Settings, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.listing_only {
            println!("{name}: benchmark");
            return;
        }
        let mut bencher = Bencher {
            settings,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A group of related benchmarks sharing settings, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    settings: Option<Settings>,
}

impl BenchmarkGroup<'_> {
    fn settings_mut(&mut self) -> &mut Settings {
        let parent = &self.parent.settings;
        self.settings.get_or_insert_with(|| parent.clone())
    }

    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings_mut().sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings_mut().measurement_time = d;
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings_mut().warm_up_time = d;
        self
    }

    /// Records the quantity each iteration processes. Accepted for API
    /// compatibility; the stand-in reports raw times only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let settings = self
            .settings
            .clone()
            .unwrap_or_else(|| self.parent.settings.clone());
        self.parent.run_one(&name, settings, f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter,
/// mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id labelled `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts both string
/// names and structured ids.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_owned())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Units-of-work declaration, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the configured
    /// measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and calibrate how many iterations fit in one sample.
        let warm_deadline = Instant::now() + self.settings.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            warm_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.settings.measurement_time.as_secs_f64();
        let samples = self.settings.sample_size.max(1);
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).floor() as u64).clamp(1, 1 << 24);

        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(Duration::from_secs_f64(
                elapsed.as_secs_f64() / iters_per_sample as f64,
            ));
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name}: no samples recorded");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let total: f64 = sorted.iter().map(Duration::as_secs_f64).sum();
        let mean = total / sorted.len() as f64;
        let median = sorted[sorted.len() / 2].as_secs_f64();
        println!(
            "{name:<60} mean {:>12} median {:>12} ({} samples)",
            format_time(mean),
            format_time(median),
            sorted.len()
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A driver that bypasses `Criterion::default()`'s CLI parsing: under
    /// `cargo test <filter>`, libtest's positional filter would otherwise be
    /// misread as a benchmark-name filter and skip the benchmarks below.
    fn quiet_criterion() -> Criterion {
        Criterion {
            settings: Settings::default(),
            filter: None,
            listing_only: false,
        }
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = quiet_criterion()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = quiet_criterion()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("f", 8), &8u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
