//! Offline, dependency-free stand-in for the subset of the `proptest` API
//! used by this workspace's property tests. The build environment cannot
//! reach a crates registry, so the workspace vendors a miniature
//! property-testing harness with the same surface syntax:
//!
//! - the [`proptest!`] macro with `#![proptest_config(..)]`, `#[test]`
//!   functions, and `pattern in strategy` arguments;
//! - [`Strategy`] with `prop_map`, plus [`Just`], ranges, tuples,
//!   regex-lite string literals, [`collection::vec`], [`sample::select`],
//!   [`sample::Index`], [`arbitrary::any`], and the [`prop_oneof!`] macro;
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: failing cases are reported via panic without
//! shrinking, and generation is deterministic per test function (seeded from
//! the test name), so test runs are reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    //! Core [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike upstream proptest there is no shrinking: a strategy is just a
    /// deterministic function of the test RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards generated values that fail `pred`, retrying (bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retry budget exhausted: {}", self.whence)
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies; the expansion of
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.random_index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// `&str` literals are regex-lite string strategies (see
    /// [`crate::string::pattern`] for the supported grammar).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! Regex-lite string generation for `&str` strategies.
    //!
    //! Supported grammar: literal characters, `.` (any printable char),
    //! character classes `[a-z0-9_]` (ranges and singletons), and the
    //! quantifiers `{m,n}`, `{n}`, `*`, `+`, `?` applied to the preceding
    //! atom. This covers the patterns used in the workspace test-suite and
    //! errors loudly on anything else.

    use super::TestRng;

    #[derive(Clone, Debug)]
    enum Atom {
        /// Any printable character (stand-in for regex `.`).
        Any,
        Literal(char),
        /// Inclusive character ranges, e.g. `[a-z0-9]`.
        Class(Vec<(char, char)>),
    }

    #[derive(Clone, Debug)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .unwrap_or_else(|| panic!("unterminated {{}} in {pattern:?}"))
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("bad {m,n} lower bound"),
                                hi.trim().parse().expect("bad {m,n} upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad {n} count");
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    const PRINTABLE_EXTRA: &[char] = &['é', 'λ', '→', '\t', '"', '\'', '\\', '\u{0}'];

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Any => {
                // Mostly ASCII printable, with occasional awkward characters.
                if rng.random_index(8) == 0 {
                    PRINTABLE_EXTRA[rng.random_index(PRINTABLE_EXTRA.len())]
                } else {
                    char::from(rng.random_range_u32(0x20..0x7F) as u8)
                }
            }
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.random_index(ranges.len())];
                char::from_u32(rng.random_range_u32(lo as u32..hi as u32 + 1))
                    .expect("class range produced invalid char")
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = if piece.min == piece.max {
                piece.min
            } else {
                piece.min + rng.random_index(piece.max - piece.min + 1)
            };
            for _ in 0..n {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy over their whole domain.
    pub trait Arbitrary {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy for the full domain of a primitive.
    #[derive(Clone, Debug, Default)]
    pub struct FullDomain<T>(core::marker::PhantomData<T>);

    macro_rules! arbitrary_prim {
        ($($t:ty => $gen:expr),+ $(,)?) => {$(
            impl Strategy for FullDomain<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullDomain<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullDomain(core::marker::PhantomData)
                }
            }
        )+};
    }

    arbitrary_prim!(
        bool => |rng| rng.random_bool(),
        u8 => |rng| rng.random_u64() as u8,
        u16 => |rng| rng.random_u64() as u16,
        u32 => |rng| rng.random_u64() as u32,
        u64 => |rng| rng.random_u64(),
        usize => |rng| rng.random_u64() as usize,
        i8 => |rng| rng.random_u64() as i8,
        i16 => |rng| rng.random_u64() as i16,
        i32 => |rng| rng.random_u64() as i32,
        i64 => |rng| rng.random_u64() as i64,
        isize => |rng| rng.random_u64() as isize,
        // Finite floats spanning several magnitudes; NaN/inf excluded, as
        // the workspace tests compare generated values.
        f64 => |rng| {
            let magnitude = [1.0, 1e3, 1e6, 1e-3][rng.random_index(4)];
            (rng.random_range(-1.0f64..1.0)) * magnitude
        },
        f32 => |rng| {
            let magnitude = [1.0f32, 1e3, 1e6, 1e-3][rng.random_index(4)];
            (rng.random_range(-1.0f32..1.0)) * magnitude
        },
    );

    impl Arbitrary for crate::sample::Index {
        type Strategy = crate::sample::IndexStrategy;
        fn arbitrary() -> Self::Strategy {
            crate::sample::IndexStrategy
        }
    }
}

pub mod sample {
    //! Sampling helpers: [`Index`] and [`select`].

    use super::strategy::Strategy;
    use super::TestRng;

    /// A position into a not-yet-known-length collection, mirroring
    /// `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects this abstract index onto a collection of length `len`.
        /// Panics if `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy yielding [`Index`] values (via `any::<Index>()`).
    #[derive(Clone, Debug)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.random_u64())
        }
    }

    /// Strategy choosing uniformly from a fixed set of values.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.random_index(self.0.len())].clone()
        }
    }

    /// Returns a strategy that picks one of `options`, mirroring
    /// `proptest::sample::select`. Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty options");
        Select(options)
    }
}

pub mod collection {
    //! Collection strategies: [`vec`].

    use super::strategy::Strategy;
    use super::TestRng;

    /// Size bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min;
            let n = self.size.min + if span == 0 { 0 } else { rng.random_index(span) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Returns a strategy producing vectors of `element` values with length
    /// in `size`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test configuration ([`Config`]) mirroring `proptest::test_runner`.

    /// Subset of `proptest::test_runner::Config` used by the workspace.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The RNG handed to strategies; wraps the vendored [`SmallRng`] and is
/// seeded deterministically per test from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates a generator seeded from an FNV-1a hash of `name`, so each
    /// property gets an independent but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Next raw 64-bit word.
    pub fn random_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// Uniform in `[0, len)`.
    pub fn random_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "random_index on empty domain");
        self.inner.gen_range(0..len)
    }

    /// Uniform draw from a range (see [`rand::SampleRange`]).
    pub fn random_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }

    /// Uniform `u32` in `range` (helper for `char` construction).
    pub fn random_range_u32(&mut self, range: core::ops::Range<u32>) -> u32 {
        self.inner.gen_range(range)
    }

    /// Fair coin.
    pub fn random_bool(&mut self) -> bool {
        self.inner.gen::<bool>()
    }
}

/// Everything the workspace test-suite imports via
/// `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::sample::Index` etc.).
    pub mod prop {
        pub use crate::arbitrary;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10i64, v in vec(0.0f64..1.0, 1..50)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)+
                let result = (|| -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let Err(message) = result {
                    panic!(
                        "property {} failed at case {}/{}:\n{}",
                        stringify!($name), case + 1, config.cases, message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside [`proptest!`], failing the current case with a
/// formatted message instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside [`proptest!`]; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside [`proptest!`]; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies with the same value type. Mirrors
/// `proptest::prop_oneof!` (weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_vecs(xs in vec(0i64..10, 1..20), f in 0.5f64..1.5) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| (0..10).contains(&x)));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), (10i64..20).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || (20..40).contains(&v));
        }

        #[test]
        fn string_patterns(s in "[a-z]{0,6}", t in ".{0,16}") {
            prop_assert!(s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 16);
        }

        #[test]
        fn index_projects(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.random_u64(), b.random_u64());
    }
}
