#![warn(missing_docs)]

//! # `sgb` — Similarity Group-By operators for multi-dimensional relational data
//!
//! Umbrella crate for the reproduction of *"Similarity Group-by Operators
//! for Multi-dimensional Relational Data"* (Tang et al.). It re-exports the
//! workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`sgb_core`] | the SGB-All / SGB-Any / SGB-Around operators and the cost-based `Auto` algorithm selection (the paper lineage's contribution) |
//! | [`sgb_geom`] | points, rectangles, the `L1`/`L2`/`L∞` metrics, convex hulls |
//! | [`sgb_spatial`] | the on-the-fly R-tree (STR bulk loading) and the uniform ε-grid |
//! | [`sgb_dsu`] | Union-Find for group merging |
//! | [`sgb_cluster`] | K-means / DBSCAN / BIRCH baselines |
//! | [`sgb_relation`] | the mini SQL engine with the `DISTANCE-TO-ALL` / `DISTANCE-TO-ANY` / `AROUND` grammar |
//! | [`sgb_datagen`] | TPC-H-like, check-in, and synthetic workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use sgb::core::{sgb_all, sgb_any, SgbAllConfig, SgbAnyConfig};
//! use sgb::geom::Point;
//!
//! let pts: Vec<Point<2>> = vec![
//!     Point::new([1.0, 1.0]),
//!     Point::new([1.5, 1.2]),
//!     Point::new([5.0, 5.0]),
//! ];
//! assert_eq!(sgb_all(&pts, &SgbAllConfig::new(1.0)).num_groups(), 2);
//! assert_eq!(sgb_any(&pts, &SgbAnyConfig::new(1.0)).num_groups(), 2);
//! ```
//!
//! Or grouped *around* query-supplied centers (SGB-Around, the
//! order-independent family member), with a radius bound that sends
//! far-away records to an explicit outlier group:
//!
//! ```
//! use sgb::core::{sgb_around, SgbAroundConfig};
//! use sgb::geom::Point;
//!
//! let pts: Vec<Point<2>> = vec![
//!     Point::new([1.0, 1.0]),
//!     Point::new([1.5, 1.2]),
//!     Point::new([5.0, 5.0]),
//! ];
//! let centers = vec![Point::new([1.0, 1.0]), Point::new([9.0, 9.0])];
//! let out = sgb_around(&pts, &SgbAroundConfig::new(centers).max_radius(2.0));
//! assert_eq!(out.groups, vec![vec![0, 1], vec![]]);
//! assert_eq!(out.outliers, vec![2]); // (5, 5) is > 2 from both centers
//! ```
//!
//! Or through SQL:
//!
//! ```
//! use sgb::relation::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE p (x DOUBLE, y DOUBLE)").unwrap();
//! db.execute("INSERT INTO p VALUES (1.0, 1.0), (1.5, 1.2), (5.0, 5.0)").unwrap();
//! let out = db
//!     .execute("SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
//!     .unwrap();
//! assert_eq!(out.len(), 2);
//! // The AROUND grammar runs through the same pipeline:
//! let around = db
//!     .execute("SELECT count(*) FROM p GROUP BY x, y AROUND ((1, 1), (5, 5)) WITHIN 2")
//!     .unwrap();
//! assert_eq!(around.len(), 2);
//! ```

/// Clustering baselines (K-means, DBSCAN, BIRCH).
pub use sgb_cluster as cluster;
/// The similarity group-by operators.
pub use sgb_core as core;
/// Workload generators.
pub use sgb_datagen as datagen;
/// Disjoint-set union.
pub use sgb_dsu as dsu;
/// Geometry primitives.
pub use sgb_geom as geom;
/// The mini relational engine.
pub use sgb_relation as relation;
/// The R-tree spatial index.
pub use sgb_spatial as spatial;

pub use sgb_core::{
    sgb_all, sgb_any, sgb_around, AllAlgorithm, AnyAlgorithm, AroundAlgorithm, AroundGrouping,
    Grouping, OverlapAction, SgbAll, SgbAllConfig, SgbAny, SgbAnyConfig, SgbAround,
    SgbAroundConfig,
};
pub use sgb_geom::{Metric, Point, Point2, Point3, Rect};
pub use sgb_relation::Database;
