#![warn(missing_docs)]

//! # `sgb` — Similarity Group-By operators for multi-dimensional relational data
//!
//! Umbrella crate for the reproduction of *"Similarity Group-by Operators
//! for Multi-dimensional Relational Data"* (Tang et al.). It re-exports the
//! workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`sgb_core`] | the SGB-All / SGB-Any / SGB-Around operators behind the unified [`SgbQuery`] surface, plus the cost-based `Auto` algorithm selection (the paper lineage's contribution) |
//! | [`sgb_geom`] | points, rectangles, the `L1`/`L2`/`L∞` metrics, convex hulls |
//! | [`sgb_spatial`] | the on-the-fly R-tree (STR bulk loading) and the uniform ε-grid |
//! | [`sgb_dsu`] | Union-Find for group merging |
//! | [`sgb_cluster`] | K-means / DBSCAN / BIRCH baselines |
//! | [`sgb_relation`] | the mini SQL engine with the `DISTANCE-TO-ALL` / `DISTANCE-TO-ANY` / `AROUND` grammar and typed [`SessionOptions`] |
//! | [`sgb_datagen`] | TPC-H-like, check-in, and synthetic workload generators |
//!
//! The whole operator family is driven through **three unified types**:
//! one [`SgbQuery`] builder (`::all` / `::any` / `::around`), one
//! [`Algorithm`] selector, and one [`Grouping`] result.
//!
//! ## Quickstart
//!
//! ```
//! use sgb::{Point, SgbQuery};
//!
//! let pts: Vec<Point<2>> = vec![
//!     Point::new([1.0, 1.0]),
//!     Point::new([1.5, 1.2]),
//!     Point::new([5.0, 5.0]),
//! ];
//! // ε-cliques and connected components from the same builder:
//! assert_eq!(SgbQuery::all(1.0).run(&pts).num_groups(), 2);
//! assert_eq!(SgbQuery::any(1.0).run(&pts).num_groups(), 2);
//! ```
//!
//! Or grouped *around* query-supplied centers (SGB-Around, the
//! order-independent family member), with a radius bound that sends
//! far-away records to an explicit outlier set:
//!
//! ```
//! use sgb::{Point, SgbQuery};
//!
//! let pts: Vec<Point<2>> = vec![
//!     Point::new([1.0, 1.0]),
//!     Point::new([1.5, 1.2]),
//!     Point::new([5.0, 5.0]),
//! ];
//! let centers = vec![Point::new([1.0, 1.0]), Point::new([9.0, 9.0])];
//! let out = SgbQuery::around(centers).max_radius(2.0).run(&pts);
//! assert_eq!(out.groups(), &[vec![0, 1]]); // the far center stays empty
//! assert_eq!(out.outliers(), &[2]); // (5, 5) is > 2 from both centers
//! ```
//!
//! Every run reports which execution path the cost model picked and why —
//! the same story `EXPLAIN` tells at the SQL layer:
//!
//! ```
//! use sgb::{Algorithm, Point, SgbQuery};
//!
//! let pts = vec![Point::new([0.0, 0.0]), Point::new([1.0, 1.0])];
//! let out = SgbQuery::any(0.5).run(&pts);
//! assert_eq!(out.resolved_algorithm(), Algorithm::AllPairs); // tiny input
//! assert!(out.selection_reason().contains("n = 2"));
//! ```
//!
//! Or through SQL, with the session's engine options typed as
//! [`SessionOptions`]:
//!
//! ```
//! use sgb::{Algorithm, Database};
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE p (x DOUBLE, y DOUBLE)").unwrap();
//! db.execute("INSERT INTO p VALUES (1.0, 1.0), (1.5, 1.2), (5.0, 5.0)").unwrap();
//! let out = db
//!     .execute("SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
//!     .unwrap();
//! assert_eq!(out.len(), 2);
//! // The AROUND grammar runs through the same pipeline:
//! let around = db
//!     .execute("SELECT count(*) FROM p GROUP BY x, y AROUND ((1, 1), (5, 5)) WITHIN 2")
//!     .unwrap();
//! assert_eq!(around.len(), 2);
//! // One mutable surface for the engine options:
//! db.session_mut().any_algorithm = Algorithm::Grid;
//! let plan = db
//!     .explain("SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
//!     .unwrap();
//! assert!(plan.contains("path: Grid, threads: 1; pinned by session options"));
//! ```
//!
//! Each `Database` session keeps a **shared-work cache** across queries:
//! built indexes are reused (one ε-grid serves any larger-ε query), exact
//! repeats return straight from a result cache, and `EXPLAIN` reports
//! `index: cached (hit)` vs `built`:
//!
//! ```
//! use sgb::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE p (x DOUBLE, y DOUBLE)").unwrap();
//! db.execute("INSERT INTO p VALUES (1.0, 1.0), (1.5, 1.2), (5.0, 5.0)").unwrap();
//! let q = "SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1";
//! let first = db.execute(q).unwrap();
//! assert_eq!(db.execute(q).unwrap(), first); // served from the result cache
//! assert_eq!(db.cache_stats().result_hits, 1);
//! ```

/// Clustering baselines (K-means, DBSCAN, BIRCH).
pub use sgb_cluster as cluster;
/// The similarity group-by operators.
pub use sgb_core as core;
/// Workload generators.
pub use sgb_datagen as datagen;
/// Disjoint-set union.
pub use sgb_dsu as dsu;
/// Geometry primitives.
pub use sgb_geom as geom;
/// The mini relational engine.
pub use sgb_relation as relation;
/// The R-tree spatial index.
pub use sgb_spatial as spatial;
/// Query profiles, the metrics registry, and the slow-query log.
pub use sgb_telemetry as telemetry;

// The unified operator surface: one builder, one algorithm selector, one
// result type — the only way the root crate exposes algorithm selection
// and answer sets. (The per-operator execution layer stays reachable
// through the `core` module re-export for benchmarking and migration.)
pub use sgb_core::query::{Grouping, SgbQuery, SgbStream};
pub use sgb_core::{Algorithm, OverlapAction};
pub use sgb_geom::{Metric, Point, Point2, Point3, Rect};
pub use sgb_relation::{Database, SessionOptions};
