//! SGB operators vs standalone clustering (Section 8.6, Figure 11):
//! runtime and grouping behaviour on the same check-in workload.
//!
//! ```text
//! cargo run --release --example clustering_comparison [n]
//! ```
//!
//! The optional positional argument overrides the check-in count (default
//! 30000) — CI runs the example at tiny scale.

use sgb::cluster::{birch, dbscan, kmeans, BirchConfig, DbscanConfig, KMeansConfig, Label};
use sgb::datagen::CheckinConfig;
use sgb::{Metric, SgbQuery};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n must be an integer"))
        .unwrap_or(30_000);
    let eps = 0.2;
    let points = CheckinConfig::brightkite_like(n).generate().points();
    println!("{n} Brightkite-like check-ins, ε = {eps}°\n");
    println!(
        "{:<22} {:>10} {:>10}   notes",
        "method", "groups", "time(ms)"
    );

    let report = |name: &str, groups: usize, ms: f64, notes: &str| {
        println!("{name:<22} {groups:>10} {ms:>10.1}   {notes}");
    };

    let t = Instant::now();
    let any = SgbQuery::any(eps).metric(Metric::L2).run(&points);
    report(
        "SGB-Any",
        any.num_groups(),
        t.elapsed().as_secs_f64() * 1e3,
        "connected components of the ε-graph",
    );

    let t = Instant::now();
    let all = SgbQuery::all(eps).metric(Metric::L2).run(&points);
    report(
        "SGB-All JOIN-ANY",
        all.num_groups(),
        t.elapsed().as_secs_f64() * 1e3,
        "maximal ε-cliques",
    );

    let t = Instant::now();
    let db = dbscan(&points, &DbscanConfig::new(eps).min_pts(4));
    let noise = db.labels.iter().filter(|&&l| l == Label::Noise).count();
    report(
        "DBSCAN (minPts=4)",
        db.clusters,
        t.elapsed().as_secs_f64() * 1e3,
        &format!("{noise} noise points"),
    );

    let t = Instant::now();
    let b = birch(&points, &BirchConfig::new(eps));
    report(
        "BIRCH (T=0.2)",
        b.clusters.len(),
        t.elapsed().as_secs_f64() * 1e3,
        "CF-tree leaf entries",
    );

    for k in [20usize, 40] {
        let t = Instant::now();
        let km = kmeans(&points, &KMeansConfig::new(k).max_iters(300).tol(1e-8));
        report(
            &format!("K-means (K={k})"),
            km.centroids.len(),
            t.elapsed().as_secs_f64() * 1e3,
            &format!("{} iterations, inertia {:.0}", km.iterations, km.inertia),
        );
    }

    // Qualitative contrast: K-means must be told K and splits hotspots
    // arbitrarily; SGB-Any discovers the hotspot count from ε; SGB-All
    // bounds every group's diameter by ε (useful when "a group" means
    // "users within walking distance of each other").
    let large_any = any.iter().filter(|g| g.len() >= 50).count();
    let large_all = all.iter().filter(|g| g.len() >= 50).count();
    println!(
        "\nhotspots with ≥ 50 check-ins: SGB-Any {large_any}, SGB-All {large_all} \
         (cliques bound the group diameter by ε, components do not)"
    );

    // The same comparison across all three Minkowski norms: the L1 diamond
    // is the strictest ball, the L∞ square the loosest, so group counts
    // fall (Any/All/DBSCAN/BIRCH) as the ball grows L1 → L2 → L∞. K-means
    // always produces exactly K clusters, so its row counts the clusters
    // that grew past n/15 members (above the n/20 average) — the part of
    // its output the assignment metric actually moves.
    println!("\nmetric sweep (same ε, group counts per norm):");
    println!("{:<22} {:>8} {:>8} {:>8}", "method", "L1", "L2", "LINF");
    let mut rows: Vec<(&str, Vec<usize>)> = vec![
        ("SGB-Any", Vec::new()),
        ("SGB-All JOIN-ANY", Vec::new()),
        ("DBSCAN (minPts=4)", Vec::new()),
        ("BIRCH", Vec::new()),
        ("K-means >=n/15 members", Vec::new()),
    ];
    for metric in [Metric::L1, Metric::L2, Metric::LInf] {
        rows[0]
            .1
            .push(SgbQuery::any(eps).metric(metric).run(&points).num_groups());
        rows[1]
            .1
            .push(SgbQuery::all(eps).metric(metric).run(&points).num_groups());
        rows[2]
            .1
            .push(dbscan(&points, &DbscanConfig::new(eps).min_pts(4).metric(metric)).clusters);
        rows[3].1.push(
            birch(&points, &BirchConfig::new(eps).metric(metric))
                .clusters
                .len(),
        );
        let km = kmeans(&points, &KMeansConfig::new(20).metric(metric));
        let mut sizes = vec![0usize; km.centroids.len()];
        for &c in &km.assignment {
            sizes[c] += 1;
        }
        rows[4]
            .1
            .push(sizes.iter().filter(|&&s| s >= n / 15).count());
    }
    for (name, counts) in rows {
        println!(
            "{name:<22} {:>8} {:>8} {:>8}",
            counts[0], counts[1], counts[2]
        );
    }
}
