//! Location-based group recommendation in mobile social media —
//! Example 4 / Query 3 of the paper.
//!
//! Users who frequent nearby locations form recommendation groups; the
//! `ON-OVERLAP` clause controls what happens to users whose location
//! qualifies for several groups (privacy: a user joining two groups could
//! leak information between them).
//!
//! ```text
//! cargo run --example social_checkins [n]
//! ```
//!
//! The optional positional argument overrides the check-in count (default
//! 4000) — CI runs the example at tiny scale.

use sgb::datagen::CheckinConfig;
use sgb::relation::{Schema, Table, Value};
use sgb::{Database, SessionOptions};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n must be an integer"))
        .unwrap_or(4_000);
    // A small Brightkite-like snapshot of user check-ins.
    let data = CheckinConfig::brightkite_like(n).seed(11).generate();
    println!("{} check-ins from {} users", data.len(), n / 12);

    // users_frequent_location(user_id, lat, lon): one row per user — the
    // centroid of their check-ins (their "frequent location").
    let mut sums: std::collections::BTreeMap<u32, (f64, f64, u32)> = Default::default();
    for c in &data.checkins {
        let e = sums.entry(c.user).or_insert((0.0, 0.0, 0));
        e.0 += c.location.x();
        e.1 += c.location.y();
        e.2 += 1;
    }
    let mut table = Table::empty(Schema::new(["user_id", "lat", "lon"]));
    for (user, (sx, sy, n)) in &sums {
        table
            .push(vec![
                Value::Int(*user as i64),
                Value::Float(sx / *n as f64),
                Value::Float(sy / *n as f64),
            ])
            .unwrap();
    }
    println!("{} users with a frequent location\n", table.len());
    // A pinned JOIN-ANY seed makes the privacy comparison reproducible:
    // session options are typed and set once, at construction.
    let mut db = Database::with_options(SessionOptions::new().with_seed(11));
    db.register("users_frequent_location", table);

    // Query 3 with the three ON-OVERLAP semantics. list_id is the paper's
    // user-defined aggregate returning the member user ids.
    for overlap in ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"] {
        let out = db
            .query(&format!(
                "SELECT count(*) AS members, list_id(user_id), \
                        min(lat), max(lat), min(lon), max(lon) \
                 FROM users_frequent_location \
                 GROUP BY lat, lon DISTANCE-TO-ALL L2 WITHIN 0.5 \
                 ON-OVERLAP {overlap} \
                 HAVING count(*) >= 3 \
                 ORDER BY members DESC LIMIT 5"
            ))
            .unwrap();
        println!("ON-OVERLAP {overlap}: top recommendation groups (>= 3 members)");
        for row in &out.rows {
            let ids = row[1].to_string();
            let preview: String = ids.chars().take(48).collect();
            println!(
                "  {} members around [{:.2}, {:.2}] ids {}{}",
                row[0],
                row[2].as_f64().unwrap(),
                row[4].as_f64().unwrap(),
                preview,
                if ids.len() > 48 { "…" } else { "" }
            );
        }
        println!();
    }

    // Privacy contrast: JOIN-ANY forces each user into one group; ELIMINATE
    // drops ambiguous users entirely; FORM-NEW-GROUP gives them their own
    // dedicated group. Compare total recommended users:
    for (overlap, label) in [
        ("JOIN-ANY", "assigned somewhere"),
        ("ELIMINATE", "dropped if ambiguous"),
        ("FORM-NEW-GROUP", "ambiguous get own groups"),
    ] {
        let out = db
            .query(&format!(
                "SELECT sum(n) FROM (SELECT count(*) AS n FROM users_frequent_location \
                 GROUP BY lat, lon DISTANCE-TO-ALL L2 WITHIN 0.5 ON-OVERLAP {overlap}) AS g"
            ))
            .unwrap();
        println!(
            "{overlap:<16} users recommended: {:>4}   ({label})",
            out.scalar().unwrap()
        );
    }
}
