//! The paper's evaluation queries (Table 2) end to end: generate
//! TPC-H-like data, register it in the engine, EXPLAIN a similarity plan,
//! and run the GB/SGB query pairs.
//!
//! ```text
//! cargo run --release --example sql_tpch [density]
//! ```
//!
//! The optional positional argument overrides the generator density
//! (default 0.005) — CI runs the example at tiny scale.

use sgb::datagen::TpchConfig;
use sgb::{Algorithm, Database, SessionOptions};
use std::time::Instant;

fn main() {
    let density: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("density must be a number"))
        .unwrap_or(0.005);
    let data = TpchConfig::new(1.0).density(density).generate();
    println!(
        "TPC-H-like data @ SF 1 (density {density}): customer={}, orders={}, lineitem={}, \
         supplier={}, partsupp={}\n",
        data.customer.len(),
        data.orders.len(),
        data.lineitem.len(),
        data.supplier.len(),
        data.partsupp.len()
    );
    // Session options are typed and set once at construction: a pinned
    // JOIN-ANY seed for reproducible SGB1 output.
    let mut db = Database::with_options(SessionOptions::new().with_seed(0x5EED));
    data.register_all(&mut db);

    // The plan of an SGB query: the similarity group-by is a first-class
    // operator sitting on top of the join, exactly as in Section 8.2.
    let sgb1 = "SELECT count(*), max(ab), min(tp) \
                FROM (SELECT c_custkey, c_acctbal AS ab FROM customer \
                      WHERE c_acctbal > 100) AS r1, \
                     (SELECT o_custkey, sum(o_totalprice) AS tp FROM orders \
                      GROUP BY o_custkey) AS r2 \
                WHERE r1.c_custkey = r2.o_custkey \
                GROUP BY ab / 11000.0, tp / 3000000.0 \
                DISTANCE-TO-ALL L2 WITHIN 0.2 ON-OVERLAP JOIN-ANY";
    println!("EXPLAIN SGB1:\n{}", db.explain(sgb1).unwrap());
    // One mutable session surface: pin the SGB-All path and EXPLAIN again —
    // the plan records that the session, not the cost model, chose it.
    db.session_mut().all_algorithm = Algorithm::BoundsChecking;
    println!(
        "EXPLAIN SGB1 (session pins BoundsChecking):\n{}",
        db.explain(sgb1).unwrap()
    );
    db.session_mut().all_algorithm = Algorithm::Auto;

    let run = |db: &Database, name: &str, sql: &str| {
        let start = Instant::now();
        let out = db.query(sql).unwrap();
        println!(
            "{name:<6} {:>6} rows  {:>8.1} ms",
            out.len(),
            start.elapsed().as_secs_f64() * 1e3
        );
        out
    };

    println!("--- SGB1: customers with similar buying power & balance ---");
    let out = run(&db, "SGB1", sgb1);
    println!("{}\n", out.sorted());

    println!("--- GB2 vs SGB3/SGB4: profit & shipment-time grouping ---");
    let inner = "SELECT ps_partkey AS partkey, \
                 sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS tprof, \
                 sum(l_receiptdate - l_shipdate) AS stime \
                 FROM lineitem, partsupp, supplier \
                 WHERE ps_partkey = l_partkey AND s_suppkey = ps_suppkey \
                 GROUP BY ps_partkey";
    run(
        &db,
        "GB2",
        &format!("SELECT count(*), sum(tprof) FROM ({inner}) AS profit GROUP BY tprof, stime"),
    );
    run(
        &db,
        "SGB3",
        &format!(
            "SELECT count(*), sum(tprof), sum(stime) FROM ({inner}) AS profit \
             GROUP BY tprof / 10000000.0, stime / 3000.0 \
             DISTANCE-TO-ALL L2 WITHIN 0.2 ON-OVERLAP FORM-NEW-GROUP"
        ),
    );
    run(
        &db,
        "SGB4",
        &format!(
            "SELECT count(*), sum(tprof), sum(stime) FROM ({inner}) AS profit \
             GROUP BY tprof / 10000000.0, stime / 3000.0 DISTANCE-TO-ANY L2 WITHIN 0.2"
        ),
    );

    println!("\n--- GB3 vs SGB5/SGB6: supplier revenue grouping ---");
    run(
        &db,
        "GB3",
        "SELECT l_suppkey, sum(l_extendedprice * (1 - l_discount)) AS trevenue \
         FROM lineitem \
         WHERE l_shipdate > date '1995-01-01' \
           AND l_shipdate < date '1995-01-01' + interval '10' month \
         GROUP BY l_suppkey",
    );
    let revenue_inner = "SELECT l_suppkey AS suppkey, \
                         sum(l_extendedprice * (1 - l_discount)) AS trevenue, \
                         max(s_acctbal) AS acctbal \
                         FROM lineitem, supplier \
                         WHERE s_suppkey = l_suppkey \
                           AND l_shipdate > date '1995-01-01' \
                           AND l_shipdate < date '1995-01-01' + interval '10' month \
                         GROUP BY l_suppkey";
    let sgb5 = run(
        &db,
        "SGB5",
        &format!(
            "SELECT count(*), array_agg(suppkey), sum(trevenue) FROM ({revenue_inner}) AS r \
             GROUP BY trevenue / 100000000.0, acctbal / 10000.0 \
             DISTANCE-TO-ALL L2 WITHIN 0.2 ON-OVERLAP ELIMINATE"
        ),
    );
    println!("{}", sgb5.sorted());
    run(
        &db,
        "SGB6",
        &format!(
            "SELECT count(*), sum(trevenue) FROM ({revenue_inner}) AS r \
             GROUP BY trevenue / 100000000.0, acctbal / 10000.0 DISTANCE-TO-ANY L2 WITHIN 0.2"
        ),
    );
}
