//! Mobile Ad hoc Network (MANET) analysis — Example 3 of the paper.
//!
//! A mobile device belongs to a MANET when it is within signal range of at
//! least one other device (Query 1: SGB-Any finds the connected networks),
//! and devices whose signal reaches several groups of devices are gateway
//! candidates (Query 2: SGB-All FORM-NEW-GROUP isolates them).
//!
//! ```text
//! cargo run --example manet [n]
//! ```
//!
//! The optional positional argument overrides the device count (default
//! 60) — CI runs the example at tiny scale.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgb::relation::{Schema, Table, Value};
use sgb::{Database, Metric, OverlapAction, Point, SgbQuery};

/// Scatter `n` devices as a few camps plus wanderers between them.
fn deploy_devices(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let camps = [(10.0, 10.0), (30.0, 12.0), (20.0, 30.0)];
    let mut devices = Vec::with_capacity(n);
    for i in 0..n {
        if i % 5 == 4 {
            // Wanderer somewhere on the field.
            devices.push(Point::new([
                rng.gen_range(5.0..35.0),
                rng.gen_range(5.0..35.0),
            ]));
        } else {
            let (cx, cy) = camps[i % camps.len()];
            devices.push(Point::new([
                cx + rng.gen_range(-4.0..4.0),
                cy + rng.gen_range(-4.0..4.0),
            ]));
        }
    }
    devices
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n must be an integer"))
        .unwrap_or(60);
    let signal_range = 3.5;
    let devices = deploy_devices(n, 7);
    println!(
        "{} mobile devices, signal range {signal_range}\n",
        devices.len()
    );

    // --- Query 1: geographic areas that encompass a MANET (SGB-Any) ----
    let networks = SgbQuery::any(signal_range).metric(Metric::L2).run(&devices);
    println!(
        "Query 1 (DISTANCE-TO-ANY): {} connected networks",
        networks.num_groups()
    );
    for (i, g) in networks.iter().enumerate() {
        if g.len() < 2 {
            continue;
        }
        // Bounding box of the network area (the paper's ST_Polygon stand-in).
        let (mut lo, mut hi) = (devices[g[0]], devices[g[0]]);
        for &m in g {
            lo = lo.min(&devices[m]);
            hi = hi.max(&devices[m]);
        }
        println!(
            "  network {i}: {} devices, area [{:.1},{:.1}] x [{:.1},{:.1}]",
            g.len(),
            lo.x(),
            hi.x(),
            lo.y(),
            hi.y()
        );
    }

    // --- Query 2: candidate gateway devices (SGB-All FORM-NEW-GROUP) ---
    let cliques = SgbQuery::all(signal_range)
        .metric(Metric::L2)
        .overlap(OverlapAction::FormNewGroup)
        .seed(1)
        .run(&devices);
    // Devices that were re-grouped (deferred out of overlapping cliques)
    // sit between radio groups: ideal gateway candidates. They are exactly
    // the members of groups formed after the first pass — approximate them
    // by comparing against ELIMINATE, whose eliminated set is the paper's
    // overlap set Oset.
    let eliminate = SgbQuery::all(signal_range)
        .metric(Metric::L2)
        .overlap(OverlapAction::Eliminate)
        .seed(1)
        .run(&devices);
    println!(
        "\nQuery 2 (DISTANCE-TO-ALL ... ON-OVERLAP FORM-NEW-GROUP): \
         {} radio cliques",
        cliques.num_groups()
    );
    println!(
        "  gateway candidates (overlap set Oset): {} devices {:?}",
        eliminate.eliminated().len(),
        eliminate.eliminated()
    );

    // --- The same through SQL ------------------------------------------
    let mut db = Database::new();
    let mut table = Table::empty(Schema::new(["mdid", "lat", "lon"]));
    for (i, d) in devices.iter().enumerate() {
        table
            .push(vec![
                Value::Int(i as i64),
                Value::Float(d.x()),
                Value::Float(d.y()),
            ])
            .unwrap();
    }
    db.register("mobile_devices", table);
    let nets = db
        .query(&format!(
            "SELECT count(*), min(lat), max(lat), min(lon), max(lon) FROM mobile_devices \
             GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN {signal_range} \
             HAVING count(*) > 1 ORDER BY count(*) DESC"
        ))
        .unwrap();
    println!("\nSQL Query 1 — networks with their bounding boxes:\n{nets}");
    let gateways = db
        .query(&format!(
            "SELECT count(*) FROM mobile_devices \
             GROUP BY lat, lon DISTANCE-TO-ALL L2 WITHIN {signal_range} \
             ON-OVERLAP FORM-NEW-GROUP"
        ))
        .unwrap();
    println!(
        "SQL Query 2 — {} groups after gateway isolation",
        gateways.len()
    );
}
