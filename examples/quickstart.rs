//! Quickstart: the similarity group-by operator family on the paper's
//! running example (Figure 2 / Examples 1 and 2), driven through the
//! unified `SgbQuery` builder.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sgb::{Metric, OverlapAction, Point, SgbQuery};

fn main() {
    // Figure 2 of the paper: after processing a1..a4 the groups are
    // g1 {a1, a2} and g2 {a3, a4}; a5 is within ε = 3 (L∞) of all four
    // points, so it overlaps both groups.
    let points: Vec<Point<2>> = vec![
        Point::new([1.0, 7.0]), // a1
        Point::new([2.0, 6.0]), // a2
        Point::new([6.0, 2.0]), // a3
        Point::new([7.0, 1.0]), // a4
        Point::new([4.0, 4.0]), // a5
    ];
    let names = ["a1", "a2", "a3", "a4", "a5"];
    let render = |grouping: &sgb::Grouping| {
        grouping
            .iter()
            .map(|g| {
                let members: Vec<&str> = g.iter().map(|&r| names[r]).collect();
                format!("{{{}}}", members.join(", "))
            })
            .collect::<Vec<_>>()
            .join("  ")
    };

    println!("Input: a1(1,7) a2(2,6) a3(6,2) a4(7,1) a5(4,4), ε = 3, L∞\n");

    // SGB-All with the three ON-OVERLAP semantics (Example 1): one
    // builder, one knob per clause.
    for overlap in [
        OverlapAction::JoinAny,
        OverlapAction::Eliminate,
        OverlapAction::FormNewGroup,
    ] {
        let out = SgbQuery::all(3.0)
            .metric(Metric::LInf)
            .overlap(overlap)
            .seed(42)
            .run(&points);
        println!(
            "SGB-All ON-OVERLAP {:<15} groups: {}  count(*) = {:?}{}",
            overlap.sql_keyword(),
            render(&out),
            out.sizes(),
            if out.eliminated().is_empty() {
                String::new()
            } else {
                let dropped: Vec<&str> = out.eliminated().iter().map(|&r| names[r]).collect();
                format!("  eliminated: {dropped:?}")
            }
        );
    }

    // SGB-Any (Example 2): a5 bridges both groups, so everything merges
    // and the query output is {5}.
    let out = SgbQuery::any(3.0).metric(Metric::LInf).run(&points);
    println!(
        "\nSGB-Any                         groups: {}  count(*) = {:?}",
        render(&out),
        out.sizes()
    );
    println!(
        "  (executed via {}: {})",
        out.resolved_algorithm(),
        out.selection_reason()
    );

    // The same statements through SQL.
    let mut db = sgb::Database::new();
    db.execute("CREATE TABLE gps (lat DOUBLE, lon DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO gps VALUES (1.0, 7.0), (2.0, 6.0), (6.0, 2.0), (7.0, 1.0), (4.0, 4.0)")
        .unwrap();
    let table = db
        .execute(
            "SELECT count(*) FROM gps \
             GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE",
        )
        .unwrap();
    println!("\nSQL: SELECT count(*) ... DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE");
    println!("{table}");
}
